"""Unit tests for mining pools and block attribution."""

import pytest

from repro.chain.attribution import (
    UNKNOWN_POOL,
    PoolAttributor,
    PoolDirectory,
    blocks_by_pool,
    estimate_hash_rates,
    top_pools,
)
from repro.chain.blockchain import Blockchain
from repro.chain.constants import COIN, block_subsidy
from repro.mempool.mempool import MempoolEntry
from repro.mining.pool import (
    DATASET_C_POOLS,
    MiningPool,
    make_directory,
    make_pools,
    normalize_hash_shares,
)

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("pool")


class TestMiningPool:
    def test_reward_addresses_minted(self):
        pool = MiningPool(name="P", marker="/P/", hash_share=0.1, reward_address_count=5)
        assert len(pool.reward_addresses) == 5
        assert len(set(pool.reward_addresses)) == 5

    def test_reward_address_rotation(self):
        pool = MiningPool(name="P", marker="/P/", hash_share=0.1, reward_address_count=2)
        seq = [pool.next_reward_address() for _ in range(4)]
        assert seq[0] == seq[2] and seq[1] == seq[3] and seq[0] != seq[1]

    def test_invalid_share_rejected(self):
        with pytest.raises(ValueError):
            MiningPool(name="P", marker="/P/", hash_share=1.5)

    def test_invalid_wallet_count_rejected(self):
        with pytest.raises(ValueError):
            MiningPool(name="P", marker="/P/", hash_share=0.1, reward_address_count=0)

    def test_assemble_block(self, txf):
        pool = MiningPool(name="P", marker="/P/", hash_share=0.1)
        entries = [
            MempoolEntry(tx=txf.tx(fee=500, vsize=200), arrival_time=0.0)
        ]
        block = pool.assemble_block(
            height=0, prev_hash="0" * 64, timestamp=1.0, entries=entries
        )
        assert block.tx_count == 1
        assert block.coinbase.marker == "/P/"
        assert block.coinbase.output_value == block_subsidy(0) + 500
        assert pool.blocks_mined == 1

    def test_assemble_empty_block(self):
        pool = MiningPool(name="P", marker="/P/", hash_share=0.1)
        block = pool.assemble_block(
            height=0, prev_hash="0" * 64, timestamp=1.0, entries=[]
        )
        assert block.is_empty

    def test_normalize_hash_shares(self):
        pools = [
            MiningPool(name="A", marker="/A/", hash_share=0.2),
            MiningPool(name="B", marker="/B/", hash_share=0.6),
        ]
        shares = normalize_hash_shares(pools)
        assert sum(shares) == pytest.approx(1.0)
        assert shares[1] == pytest.approx(0.75)

    def test_make_pools_from_profile(self):
        pools = make_pools(DATASET_C_POOLS[:5])
        assert [p.name for p in pools] == [name for name, _ in DATASET_C_POOLS[:5]]
        assert all(p.marker == f"/{p.name}/" for p in pools)


class TestAttribution:
    def _pool_and_block(self, txf, marker="/P/", name="P"):
        pool = MiningPool(name=name, marker=marker, hash_share=0.1)
        block = pool.assemble_block(
            height=0, prev_hash="0" * 64, timestamp=1.0, entries=[]
        )
        return pool, block

    def test_marker_attribution(self, txf):
        pool, block = self._pool_and_block(txf)
        attributor = PoolAttributor(make_directory([pool]))
        assert attributor.attribute(block) == "P"

    def test_substring_marker_match(self, txf):
        directory = PoolDirectory()
        directory.register_pool("F2Pool", marker="/F2Pool/")
        pool = MiningPool(name="x", marker="/F2Pool/mined by user/", hash_share=0.1)
        block = pool.assemble_block(0, "0" * 64, 1.0, [])
        assert PoolAttributor(directory).attribute(block) == "F2Pool"

    def test_unknown_when_unregistered(self, txf):
        pool, block = self._pool_and_block(txf)
        attributor = PoolAttributor(PoolDirectory())
        assert attributor.attribute(block) == UNKNOWN_POOL

    def test_address_fallback(self, txf):
        pool = MiningPool(name="P", marker="", hash_share=0.1)
        block = pool.assemble_block(0, "0" * 64, 1.0, [])
        directory = PoolDirectory()
        directory.register_pool("P", addresses=pool.reward_addresses)
        assert PoolAttributor(directory).attribute(block) == "P"

    def test_address_learning(self, txf):
        # First block carries a marker; the second (markerless, same
        # wallet) attributes via the learned address.
        pool = MiningPool(name="P", marker="/P/", hash_share=0.1, reward_address_count=1)
        directory = PoolDirectory()
        directory.register_pool("P", marker="/P/")
        attributor = PoolAttributor(directory)
        first = pool.assemble_block(0, "0" * 64, 1.0, [])
        assert attributor.attribute(first) == "P"
        markerless = MiningPool(
            name="P2",
            marker="",
            hash_share=0.1,
            reward_addresses=list(pool.reward_addresses),
        )
        second = markerless.assemble_block(1, first.block_hash, 2.0, [])
        assert attributor.attribute(second) == "P"

    def test_alias_resolution(self, txf):
        directory = PoolDirectory()
        directory.register_pool("BitDeer", marker="/BitDeer/")
        directory.register_pool("BTC.com", marker="/BTC.com/")
        directory.register_alias("BitDeer", "BTC.com")
        pool = MiningPool(name="BitDeer", marker="/BitDeer/", hash_share=0.1)
        block = pool.assemble_block(0, "0" * 64, 1.0, [])
        assert PoolAttributor(directory).attribute(block) == "BTC.com"

    def test_unregistered_pool_excluded_from_directory(self):
        ghost = MiningPool(name="g", marker="/g/", hash_share=0.1, registered=False)
        directory = make_directory([ghost])
        assert "/g/" not in directory.markers

    def test_hash_rate_estimates(self):
        labels = ["A"] * 6 + ["B"] * 3 + ["C"]
        estimates = estimate_hash_rates(labels)
        assert estimates[0].pool == "A"
        assert estimates[0].share == pytest.approx(0.6)
        assert sum(e.share for e in estimates) == pytest.approx(1.0)

    def test_top_pools_excludes_unknown(self):
        labels = ["A"] * 5 + [UNKNOWN_POOL] * 5
        top = top_pools(labels, count=3)
        assert [e.pool for e in top] == ["A"]

    def test_blocks_by_pool(self, txf):
        pool_a = MiningPool(name="A", marker="/A/", hash_share=0.5)
        pool_b = MiningPool(name="B", marker="/B/", hash_share=0.5)
        chain = Blockchain()
        block_a = pool_a.assemble_block(0, chain.tip_hash, 1.0, [])
        chain.append(block_a)
        block_b = pool_b.assemble_block(1, chain.tip_hash, 2.0, [])
        chain.append(block_b)
        attributor = PoolAttributor(make_directory([pool_a, pool_b]))
        grouped = blocks_by_pool(chain, attributor)
        assert {p: len(bs) for p, bs in grouped.items()} == {"A": 1, "B": 1}
