"""Golden-report regression fixtures for the scale-0.1 battery.

The rendered reports for the paper's ordering-metrics artefacts (Figs
6-7, Tables 2-4) are pure functions of (experiment ids, scale, seeds):
every RNG in the pipeline is seeded and the five experiments below
never route through scipy, so their report text is byte-stable across
runs, platforms, and the scalar/vectorized implementation switch.

These tests pin that text: a metric refactor that silently shifts an
SPPE cell, a p-value, or even table formatting fails the byte-for-byte
diff instead of slipping through.  To intentionally update the fixture
after a *deliberate* metric change::

    PYTHONPATH=src python -m pytest tests/test_golden_reports.py \
        --regen-golden

(or delete ``tests/golden/battery_scale01.txt`` and re-run with the
flag) — then review the diff like any other source change.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.analysis.runner import run_battery
from repro.core.vectorized import SCALAR_ENV
from repro.datasets.cache import DEFAULT_CACHE_DIR

#: The battery pinned by the fixture: the paper's ordering-metrics
#: artefacts.  All five avoid scipy entirely, so the report text is
#: deterministic pure python + numpy.
GOLDEN_IDS = ["fig6", "fig7", "table2", "table3", "table4"]
GOLDEN_SCALE = 0.1
GOLDEN_PATH = Path(__file__).parent / "golden" / "battery_scale01.txt"


def _run_report() -> str:
    battery = run_battery(
        GOLDEN_IDS, scale=GOLDEN_SCALE, cache_dir=str(DEFAULT_CACHE_DIR)
    )
    return battery.report() + "\n"


def _assert_matches_golden(actual: str) -> None:
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    if actual == expected:
        return
    diff = "\n".join(
        difflib.unified_diff(
            expected.splitlines(),
            actual.splitlines(),
            fromfile="tests/golden/battery_scale01.txt",
            tofile="re-run report",
            lineterm="",
        )
    )
    pytest.fail(
        "battery report diverged from the golden fixture "
        "(regenerate deliberately with --regen-golden):\n" + diff
    )


@pytest.fixture(scope="module")
def vectorized_report(request) -> str:
    report = _run_report()
    if request.config.getoption("--regen-golden", default=False):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(report, encoding="utf-8")
    return report


class TestGoldenBattery:
    def test_report_matches_fixture_byte_for_byte(self, vectorized_report):
        _assert_matches_golden(vectorized_report)

    def test_scalar_oracle_produces_the_same_report(
        self, vectorized_report, monkeypatch
    ):
        """The REPRO_AUDIT_SCALAR hatch must not change any artefact."""
        monkeypatch.setenv(SCALAR_ENV, "1")
        scalar_report = _run_report()
        assert scalar_report == vectorized_report
        _assert_matches_golden(scalar_report)

    def test_fixture_contains_every_experiment(self):
        text = GOLDEN_PATH.read_text(encoding="utf-8")
        for experiment_id in GOLDEN_IDS:
            assert f"=== {experiment_id}:" in text, experiment_id
