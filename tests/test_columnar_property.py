"""Property-based tests: columnar round trips equal gzip-JSON interchange.

The tentpole contract of the columnar store is *byte identity on the
serialized interchange form*: for any dataset the writer accepts —
honest, misbehaving, fault-degraded, with snapshot gaps — saving it as
columnar npz and loading it back must reproduce exactly the JSON bytes
the gzip-JSON writer would emit.  Hypothesis drives randomly shaped
datasets through that loop.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.blockchain import Blockchain
from repro.datasets.columnar import load_columnar, save_columnar
from repro.datasets.dataset import Dataset
from repro.datasets.io import dataset_to_dict
from repro.datasets.records import TxRecord
from repro.mempool.snapshots import (
    MempoolSnapshot,
    SizeSeries,
    SnapshotStore,
    SnapshotTx,
)

from conftest import TxFactory, make_test_block

LABEL_POOL = (
    "scam",
    "zero-fee",
    "self-interest:F2Pool",
    "self-interest:ViaBTC",
    "accelerated:BTC.com",
    "rbf-bump",
)


def random_dataset(
    seed: int,
    blocks: int,
    with_snapshots: bool,
    with_size_series: bool,
    with_metadata: bool,
) -> Dataset:
    """A randomly shaped — but schema-valid — dataset.

    Degradation modes the cache must survive are represented: records
    with no observer arrival (observer downtime), uncommitted records,
    snapshot *gaps* (missing ticks between populated snapshots), empty
    blocks, and unattributed heights.
    """
    rng = np.random.default_rng(seed)
    txf = TxFactory(f"prop-columnar-{seed}")
    chain = Blockchain()
    records = {}
    block_pools = {}
    pools = ("F2Pool", "ViaBTC", "BTC.com")
    for height in range(blocks):
        txs = [
            txf.tx(
                fee=int(rng.integers(1, 50_000)),
                vsize=int(rng.integers(100, 900)),
                value=int(rng.integers(10**3, 10**10)),
                nonce=int(rng.integers(0, 2**31)),
            )
            for _ in range(int(rng.integers(0, 7)))
        ]
        block = make_test_block(
            txs,
            height=height,
            prev_hash=chain.tip_hash,
            timestamp=float(height) * 600.0 + float(rng.uniform(0, 30)),
        )
        chain.append(block)
        if rng.random() < 0.8:  # some heights stay unattributed
            block_pools[height] = pools[int(rng.integers(0, len(pools)))]
        for position, tx in enumerate(txs):
            committed = rng.random() < 0.85
            records[tx.txid] = TxRecord(
                txid=tx.txid,
                broadcast_time=float(rng.uniform(0, height * 600.0 + 1)),
                observer_arrival=(
                    None
                    if rng.random() < 0.25  # observer downtime
                    else float(rng.uniform(0, height * 600.0 + 2))
                ),
                fee=tx.fee,
                vsize=tx.vsize,
                commit_height=height if committed else None,
                commit_position=position if committed else None,
                labels=frozenset(
                    label
                    for label in LABEL_POOL
                    if rng.random() < 0.15
                ),
            )
    snapshots = []
    if with_snapshots:
        tick = 0.0
        for _ in range(int(rng.integers(1, 6))):
            # Irregular spacing produces snapshot gaps.
            tick += float(rng.uniform(15.0, 1800.0))
            txs = tuple(
                SnapshotTx(
                    txid=f"snap-{seed}-{i}",
                    arrival_time=tick - float(rng.uniform(0, 60)),
                    fee=int(rng.integers(1, 10_000)),
                    vsize=int(rng.integers(100, 900)),
                )
                for i in range(int(rng.integers(0, 5)))
            )
            snapshots.append(MempoolSnapshot(time=tick, txs=txs))
    size_series = None
    if with_size_series:
        count = int(rng.integers(1, 8))
        times = np.cumsum(rng.uniform(15.0, 120.0, count)).tolist()
        size_series = SizeSeries(
            times=[float(t) for t in times],
            vsizes=[int(v) for v in rng.integers(0, 4_000_000, count)],
            tx_counts=(
                [int(c) for c in rng.integers(0, 10_000, count)]
                if rng.random() < 0.5
                else None
            ),
        )
    metadata = {}
    if with_metadata:
        metadata = {
            "scenario": f"prop-{seed}",
            "faults": {"loss_rate": 0.05, "downtime": [10.0, 20.0]},
            "note": "property-generated",
        }
    return Dataset(
        name=f"prop-columnar-{seed}",
        chain=chain,
        snapshots=SnapshotStore(snapshots),
        tx_records=records,
        block_pools=block_pools,
        pool_wallets={
            "F2Pool": frozenset({"addr-x", "pool-wallet"}),
            "ViaBTC": frozenset(),
        },
        size_series=size_series,
        metadata=metadata,
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    blocks=st.integers(1, 6),
    with_snapshots=st.booleans(),
    with_size_series=st.booleans(),
    with_metadata=st.booleans(),
)
def test_columnar_round_trip_is_interchange_byte_identical(
    tmp_path_factory,
    seed,
    blocks,
    with_snapshots,
    with_size_series,
    with_metadata,
):
    dataset = random_dataset(
        seed, blocks, with_snapshots, with_size_series, with_metadata
    )
    path = tmp_path_factory.mktemp("columnar") / "prop.npz"
    save_columnar(dataset, path)
    loaded = load_columnar(path)
    original = json.dumps(
        dataset_to_dict(dataset), separators=(",", ":")
    ).encode("utf-8")
    decoded = json.dumps(
        dataset_to_dict(loaded), separators=(",", ":")
    ).encode("utf-8")
    assert decoded == original


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_columnar_write_is_deterministic(tmp_path_factory, seed):
    dataset = random_dataset(seed, 3, True, True, True)
    directory = tmp_path_factory.mktemp("columnar-det")
    first = save_columnar(dataset, directory / "one.npz").read_bytes()
    second = save_columnar(dataset, directory / "two.npz").read_bytes()
    assert first == second


def test_fault_degraded_dataset_round_trips(tmp_path, small_dataset_a):
    """A degraded (lossy, downtime-gapped) dataset survives the trip."""
    from repro.faults import FaultSchedule, degrade_dataset, spread_downtime

    observer = small_dataset_a.metadata.get("observer", small_dataset_a.name)
    duration = max(small_dataset_a.snapshots.times or [1.0])
    schedule = FaultSchedule(
        seed=7,
        tx_loss_rate=0.2,
        downtime=spread_downtime(observer, duration, 0.3),
    )
    degraded = degrade_dataset(small_dataset_a, schedule)
    path = save_columnar(degraded, tmp_path / "degraded.npz")
    loaded = load_columnar(path)
    original = json.dumps(
        dataset_to_dict(degraded), separators=(",", ":")
    ).encode()
    decoded = json.dumps(
        dataset_to_dict(loaded), separators=(",", ":")
    ).encode()
    assert decoded == original
