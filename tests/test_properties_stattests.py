"""Property-based tests for the binomial prioritization tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st
from scipy.stats import binom as scipy_binom

from repro.core.stattests import (
    binom_tail_lower,
    binom_tail_upper,
    fishers_method,
    log_binom_pmf,
    prioritization_test,
)

ns = st.integers(min_value=1, max_value=400)
ps = st.floats(min_value=0.001, max_value=0.999)


@given(n=ns, p=ps, x=st.integers(min_value=-2, max_value=420))
def test_tails_are_probabilities(n, p, x):
    upper = binom_tail_upper(x, n, p)
    lower = binom_tail_lower(x, n, p)
    assert 0.0 <= upper <= 1.0
    assert 0.0 <= lower <= 1.0


@settings(deadline=None, max_examples=40)
@given(n=st.integers(min_value=1, max_value=150), p=ps)
def test_tail_complement_identity(n, p):
    # P(B >= x) + P(B <= x-1) == 1 for every x.
    for x in range(0, n + 1):
        total = binom_tail_upper(x, n, p) + binom_tail_lower(x - 1, n, p)
        assert total == pytest.approx(1.0, abs=1e-9)


@given(n=st.integers(min_value=2, max_value=200), p=ps)
def test_upper_tail_monotone_decreasing_in_x(n, p):
    values = [binom_tail_upper(x, n, p) for x in range(0, n + 2)]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


@given(n=st.integers(min_value=2, max_value=200), p=ps)
def test_lower_tail_monotone_increasing_in_x(n, p):
    values = [binom_tail_lower(x, n, p) for x in range(-1, n + 1)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


@settings(max_examples=50)
@given(n=st.integers(min_value=1, max_value=300), p=ps, x=st.integers(min_value=0, max_value=300))
def test_matches_scipy_in_log_space(n, p, x):
    x = min(x, n)
    ours = binom_tail_upper(x, n, p)
    reference = float(scipy_binom.sf(x - 1, n, p))
    if reference > 1e-280 and ours > 1e-280:
        assert math.log(ours) == pytest.approx(math.log(reference), abs=1e-6)
    else:
        assert ours <= 1e-270 and reference <= 1e-270


@settings(deadline=None, max_examples=40)
@given(n=st.integers(min_value=1, max_value=150), p=ps, k=st.integers(min_value=0, max_value=400))
def test_pmf_normalised(n, p, k):
    # Summing the pmf over all k gives 1.
    total = sum(math.exp(log_binom_pmf(i, n, p)) for i in range(n + 1))
    assert total == pytest.approx(1.0, abs=1e-9)


@given(
    x=st.integers(min_value=0, max_value=50),
    extra=st.integers(min_value=0, max_value=50),
    theta=st.floats(min_value=0.05, max_value=0.9),
)
def test_more_own_blocks_never_raises_acceleration_p(x, extra, theta):
    y = x + extra
    if y == 0:
        return
    base = prioritization_test("m", theta, ["m"] * x + ["o"] * extra)
    if x < y:
        shifted = prioritization_test("m", theta, ["m"] * (x + 1) + ["o"] * (extra - 1))
        assert shifted.p_accelerate <= base.p_accelerate + 1e-12
        assert shifted.p_decelerate >= base.p_decelerate - 1e-12


@given(ps_list=st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=8))
def test_fisher_output_is_probability(ps_list):
    combined = fishers_method(ps_list)
    assert 0.0 <= combined <= 1.0
