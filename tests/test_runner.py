"""Tests for the parallel experiment runner and benchmark harness."""

import pytest

from repro.analysis import runner as runner_mod
from repro.analysis.experiments import ALL_RUNNERS
from repro.analysis.runner import (
    BatteryResult,
    ExperimentOutcome,
    run_battery,
    run_one,
)
from repro.datasets.builder import clear_memory_cache

#: Cheap ids: fast at tiny scale and spanning datasets A + none.
CHEAP_IDS = ["fig1", "table5", "fig14"]
SCALE = 0.04


def _fresh():
    clear_memory_cache()
    runner_mod._WORKER_CONTEXTS.clear()


class TestRunOne:
    def test_success_outcome(self):
        _fresh()
        outcome = run_one("table5", SCALE)
        assert outcome.ok
        assert outcome.experiment_id == "table5"
        assert outcome.wall_time > 0
        assert outcome.error is None
        assert "Table 5" in outcome.report()

    def test_failure_is_captured_not_raised(self, monkeypatch):
        def explode(ctx):
            raise RuntimeError("boom")

        monkeypatch.setitem(ALL_RUNNERS, "fig1", explode)
        _fresh()
        outcome = run_one("fig1", SCALE)
        assert not outcome.ok
        assert "RuntimeError: boom" in outcome.error
        assert "FAILED" in outcome.report()


class TestRunBattery:
    def test_unknown_id_rejected_upfront(self):
        with pytest.raises(KeyError):
            run_battery(["fig99"], scale=SCALE)

    def test_sequential_outcomes_in_request_order(self):
        _fresh()
        battery = run_battery(CHEAP_IDS, scale=SCALE, jobs=1)
        assert [o.experiment_id for o in battery.outcomes] == CHEAP_IDS
        assert all(o.ok for o in battery.outcomes)

    def test_parallel_report_byte_identical_to_sequential(self, tmp_path):
        _fresh()
        sequential = run_battery(
            CHEAP_IDS, scale=SCALE, jobs=1, cache_dir=tmp_path
        )
        _fresh()
        parallel = run_battery(
            CHEAP_IDS, scale=SCALE, jobs=3, cache_dir=tmp_path
        )
        assert [o.experiment_id for o in parallel.outcomes] == CHEAP_IDS
        assert parallel.report() == sequential.report()

    def test_one_failure_does_not_abort_the_rest(self, monkeypatch):
        def explode(ctx):
            raise ValueError("injected failure")

        monkeypatch.setitem(ALL_RUNNERS, "table5", explode)
        _fresh()
        battery = run_battery(CHEAP_IDS, scale=SCALE, jobs=1)
        by_id = {o.experiment_id: o for o in battery.outcomes}
        assert not by_id["table5"].ok
        assert by_id["fig1"].ok and by_id["fig14"].ok
        assert battery.failed() == [by_id["table5"]]
        # The failed slot still occupies its place in the report.
        assert "table5: FAILED" in battery.report()

    def test_timing_table_lists_every_experiment(self):
        _fresh()
        battery = run_battery(["table5"], scale=SCALE)
        table = battery.timing_table()
        assert "table5" in table and "total" in table

    def test_cache_stats_aggregate_across_outcomes(self, tmp_path):
        _fresh()
        battery = run_battery(
            ["fig5", "fig3"], scale=SCALE, jobs=1, cache_dir=tmp_path
        )
        stats = battery.cache_stats()
        assert stats.builds >= 1  # datasets A and B were built and stored
        _fresh()
        warm = run_battery(
            ["fig5", "fig3"], scale=SCALE, jobs=1, cache_dir=tmp_path
        )
        warm_stats = warm.cache_stats()
        assert warm_stats.builds == 0
        assert warm_stats.hits >= 1
        assert warm.report() == battery.report()


class TestWarmRunsSkipSimulation:
    def test_cold_then_warm_identical_and_faster_build_counts(self, tmp_path):
        _fresh()
        cold = run_battery(["fig5"], scale=SCALE, cache_dir=tmp_path)
        _fresh()
        warm = run_battery(["fig5"], scale=SCALE, cache_dir=tmp_path)
        assert cold.report() == warm.report()
        assert cold.cache_stats().builds == 1
        assert warm.cache_stats().builds == 0


class TestObsIntegration:
    def test_untraced_outcome_carries_no_obs(self):
        _fresh()
        outcome = run_one("table5", SCALE)
        assert outcome.obs is None

    def test_traced_outcome_carries_metrics_delta(self):
        from repro import obs

        _fresh()
        with obs.tracing(reset=True):
            outcome = run_one("table5", SCALE)
        assert outcome.obs is not None
        assert outcome.obs["counters"]["runner.experiments.ok"] == 1
        assert outcome.obs["spans"]["runner.experiment"]["count"] == 1

    def test_parallel_battery_merges_worker_metrics(self, tmp_path):
        """Workers trace in their own process; the parent must fold
        their deltas back so the aggregate snapshot covers the engine
        work the workers did."""
        from repro import obs

        _fresh()
        with obs.tracing(reset=True):
            # Fresh cache dir: fig5's dataset build (and so the
            # simulation engine) must run inside a worker process.
            battery = run_battery(
                ["fig5", "table5"], scale=SCALE, jobs=2, cache_dir=tmp_path
            )
            snap = obs.snapshot()
        assert battery.all_ok
        assert snap["counters"]["runner.experiments.ok"] == 2
        assert snap["counters"]["engine.blocks.committed"] > 0
        assert snap["spans"]["engine.run"]["count"] >= 1


def _hang_runner(ctx):
    import time as time_module

    time_module.sleep(300)


def _dying_runner(ctx):
    import os as os_module

    os_module._exit(3)


class TestTimeoutGuard:
    """--timeout: a hung experiment is killed and marked failed, isolated."""

    def test_run_one_kills_hung_worker(self, monkeypatch):
        import time as time_module

        monkeypatch.setitem(ALL_RUNNERS, "fig1", _hang_runner)
        _fresh()
        start = time_module.monotonic()
        outcome = run_one("fig1", SCALE, timeout=1.0)
        elapsed = time_module.monotonic() - start
        assert not outcome.ok
        assert "timed out after 1s (killed)" in outcome.error
        assert elapsed < 20  # killed, not awaited
        assert "FAILED" in outcome.report()

    def test_timeout_is_counted_when_tracing(self, monkeypatch):
        from repro import obs

        monkeypatch.setitem(ALL_RUNNERS, "fig1", _hang_runner)
        _fresh()
        with obs.tracing(reset=True):
            run_one("fig1", SCALE, timeout=1.0)
            snap = obs.snapshot()
        assert snap["counters"]["runner.experiments.timeout"] == 1

    def test_worker_death_is_reported_not_hung(self, monkeypatch):
        monkeypatch.setitem(ALL_RUNNERS, "fig1", _dying_runner)
        _fresh()
        outcome = run_one("fig1", SCALE, timeout=30.0)
        assert not outcome.ok
        assert "worker process died" in outcome.error

    def test_timed_out_cell_is_isolated_in_battery(self, monkeypatch):
        monkeypatch.setitem(ALL_RUNNERS, "table5", _hang_runner)
        _fresh()
        battery = run_battery(CHEAP_IDS, scale=SCALE, jobs=1, timeout=1.5)
        by_id = {o.experiment_id: o for o in battery.outcomes}
        assert not by_id["table5"].ok
        assert "timed out" in by_id["table5"].error
        # Failure isolation (PR 2 discipline): the others still ran.
        assert by_id["fig1"].ok and by_id["fig14"].ok
        # Report order is preserved, with the dead cell marked FAILED.
        assert [o.experiment_id for o in battery.outcomes] == CHEAP_IDS
        assert "table5: FAILED" in battery.report()

    def test_timeout_guard_under_parallel_jobs(self, monkeypatch):
        monkeypatch.setitem(ALL_RUNNERS, "table5", _hang_runner)
        _fresh()
        battery = run_battery(CHEAP_IDS, scale=SCALE, jobs=2, timeout=1.5)
        by_id = {o.experiment_id: o for o in battery.outcomes}
        assert not by_id["table5"].ok
        assert "timed out" in by_id["table5"].error
        assert by_id["fig1"].ok and by_id["fig14"].ok

    def test_generous_timeout_report_identical_to_unguarded(self):
        _fresh()
        guarded = run_battery(["table5"], scale=SCALE, timeout=300.0)
        _fresh()
        bare = run_battery(["table5"], scale=SCALE)
        assert guarded.report() == bare.report()
        assert guarded.all_ok

    def test_guarded_worker_metrics_still_merge(self, tmp_path):
        """The watchdog child's obs delta must fold into the parent."""
        from repro import obs

        _fresh()
        with obs.tracing(reset=True):
            battery = run_battery(
                ["fig5"],
                scale=SCALE,
                jobs=1,
                cache_dir=tmp_path,
                timeout=300.0,
            )
            snap = obs.snapshot()
        assert battery.all_ok
        assert snap["counters"]["runner.experiments.ok"] == 1
        assert snap["counters"]["engine.blocks.committed"] > 0


class TestBatteryResultShape:
    def test_all_ok_reflects_failing_checks(self):
        good = ExperimentOutcome("x", 0.1, error=None, result=None)
        # An outcome without a result is not ok.
        assert not good.ok
        battery = BatteryResult(
            outcomes=[good], jobs=1, scale=SCALE, total_wall=0.1
        )
        assert not battery.all_ok
        assert battery.failed() == [good]
