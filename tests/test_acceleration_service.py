"""Unit tests for the dark-fee acceleration service and pricer."""

import numpy as np
import pytest

from repro.mining.acceleration import (
    PAPER_MEAN_MULTIPLE,
    PAPER_MEDIAN_MULTIPLE,
    AccelerationPricer,
    AccelerationService,
)


class TestPricer:
    def test_quote_deterministic_per_txid(self):
        pricer = AccelerationPricer()
        assert pricer.quote("tx1", 1000) == pricer.quote("tx1", 1000)

    def test_quotes_differ_across_txids(self):
        pricer = AccelerationPricer()
        assert (
            pricer.quote("tx1", 1000).acceleration_fee
            != pricer.quote("tx2", 1000).acceleration_fee
        )

    def test_calibration_matches_paper(self):
        pricer = AccelerationPricer()
        multiples = [pricer.multiple_for(f"tx{i}") for i in range(4000)]
        median = float(np.median(multiples))
        mean = float(np.mean(multiples))
        assert median == pytest.approx(PAPER_MEDIAN_MULTIPLE, rel=0.15)
        assert mean == pytest.approx(PAPER_MEAN_MULTIPLE, rel=0.35)

    def test_min_fee_floor(self):
        pricer = AccelerationPricer(min_fee=1000)
        quote = pricer.quote("tx", public_fee=0)
        assert quote.acceleration_fee >= 1000 * 0.5  # floor applied pre-multiple

    def test_multiple_property(self):
        pricer = AccelerationPricer()
        quote = pricer.quote("tx", 2000)
        assert quote.multiple == pytest.approx(quote.acceleration_fee / 2000)

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError):
            AccelerationPricer(median_multiple=100, mean_multiple=50)


class TestService:
    def test_accelerate_and_check(self):
        service = AccelerationService(name="svc", operators=("BTC.com",))
        order = service.accelerate("tx1", public_fee=500, now=10.0)
        assert service.is_accelerated("tx1")
        assert not service.is_accelerated("tx2")
        assert order.fee_paid >= order.public_fee

    def test_underpayment_rejected(self):
        service = AccelerationService(name="svc")
        with pytest.raises(ValueError):
            service.accelerate("tx1", public_fee=500, now=0.0, offered_fee=1)

    def test_order_book_and_revenue(self):
        service = AccelerationService(name="svc")
        service.accelerate("a", public_fee=100, now=0.0)
        service.accelerate("b", public_fee=100, now=1.0)
        assert service.accelerated_txids() == {"a", "b"}
        assert service.revenue == sum(o.fee_paid for o in service.orders())

    def test_txid_cache_invalidation(self):
        service = AccelerationService(name="svc")
        service.accelerate("a", public_fee=100, now=0.0)
        first = service.accelerated_txids()
        service.accelerate("b", public_fee=100, now=1.0)
        second = service.accelerated_txids()
        assert "b" in second and "b" not in first

    def test_quote_does_not_place_order(self):
        service = AccelerationService(name="svc")
        service.quote("tx", 100)
        assert not service.is_accelerated("tx")
