"""Integration: the evented P2P reference substrate end to end.

The engine's vectorised fast path must agree with the evented network
on the observables the audit cares about: every broadcast transaction
reaches every miner with positive skew, blocks clear mempools, and an
observer's snapshots reconstruct the pending set.
"""

import numpy as np
import pytest

from repro.chain.blockchain import Blockchain
from repro.mining.pool import MiningPool
from repro.network.events import EventScheduler
from repro.network.latency import ConstantLatency
from repro.network.node import FullNode, NodeConfig, make_observer
from repro.network.p2p import build_network

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("p2p-int")


def run_evented_round(txf, tx_count=40, seed=3):
    """Broadcast txs over a real network, mine one block, return state."""
    rng = np.random.default_rng(seed)
    observer = make_observer("obs", min_fee_rate=0.0)
    miner_node = FullNode(NodeConfig(name="miner", min_fee_rate=0.0))
    others = [FullNode(NodeConfig(name=f"n{i}")) for i in range(6)]
    network = build_network([observer, miner_node] + others, rng, target_degree=4)
    scheduler = EventScheduler()
    network.schedule_snapshots(scheduler, end_time=120.0)

    txs = [txf.tx(fee=int(rng.integers(100, 10_000)), vsize=250) for _ in range(tx_count)]
    for index, tx in enumerate(txs):
        origin = others[index % len(others)]

        def inject(s, tx=tx, origin=origin):
            network.broadcast_transaction(tx, origin, s)

        scheduler.schedule(float(index), inject)

    scheduler.run_until(60.0)

    pool = MiningPool(name="M", marker="/M/", hash_share=1.0)
    chain = Blockchain()
    block = pool.assemble_block(
        height=0,
        prev_hash=chain.tip_hash,
        timestamp=scheduler.now,
        entries=miner_node.mempool.entries(),
    )
    chain.append(block)
    network.broadcast_block(block, miner_node, scheduler)
    scheduler.run_until(120.0)
    return network, observer, miner_node, chain, txs


class TestEventedPipeline:
    def test_all_transactions_reach_all_nodes(self, txf):
        network, observer, miner_node, chain, txs = run_evented_round(txf)
        for tx in txs:
            assert all(node.has_seen_tx(tx.txid) for node in network.nodes)

    def test_block_clears_all_mempools(self, txf):
        network, observer, miner_node, chain, txs = run_evented_round(txf)
        committed = {tx.txid for tx in chain[0].transactions}
        for node in network.nodes:
            for txid in committed:
                assert txid not in node.mempool

    def test_block_is_fee_rate_ordered(self, txf):
        _, _, _, chain, _ = run_evented_round(txf)
        rates = [tx.fee_rate for tx in chain[0].transactions]
        assert rates == sorted(rates, reverse=True)

    def test_observer_snapshots_grow_then_drain(self, txf):
        _, observer, _, chain, txs = run_evented_round(txf)
        store = observer.snapshot_store()
        counts = [snapshot.tx_count for snapshot in store]
        assert max(counts) > 0
        # After the block propagated, the pending set collapsed.
        assert counts[-1] < max(counts)

    def test_arrival_skew_between_observer_and_miner(self, txf):
        network, observer, miner_node, chain, txs = run_evented_round(txf)
        store = observer.snapshot_store()
        first_seen = store.first_seen()
        # The observer and the miner saw at least one tx at different
        # times (propagation skew — the basis for the paper's ε).
        assert first_seen  # non-empty

    def test_constant_latency_network_is_deterministic(self, txf):
        rng = np.random.default_rng(0)
        nodes = [FullNode(NodeConfig(name=f"n{i}")) for i in range(4)]
        network = build_network(
            nodes,
            rng,
            target_degree=3,
            tx_latency=ConstantLatency(0.5),
        )
        scheduler = EventScheduler()
        tx = txf.tx()
        network.broadcast_transaction(tx, nodes[0], scheduler)
        scheduler.run()
        arrivals = sorted(
            node.mempool.arrival_time(tx.txid)
            for node in nodes
            if node.mempool.arrival_time(tx.txid) is not None
        )
        # One hop = 0.5 s steps from the origin's own 0.0.
        assert arrivals[0] == 0.0
        assert all(a % 0.5 == 0 for a in arrivals)
