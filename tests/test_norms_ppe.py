"""Unit tests for the norm predictor and PPE/SPPE metrics."""

import pytest

from repro.core.norms import (
    CpfpFilter,
    filter_block_transactions,
    percentile_ranks,
    predict_block_positions,
    predicted_order,
    prediction_for,
)
from repro.core.ppe import (
    PpeSummary,
    block_ppe,
    chain_ppe,
    per_transaction_sppe,
    sppe,
    summarize_ppe,
)

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("ppe")


def block_with_rates(txf, rates, vsize=100):
    txs = [txf.tx(fee=int(rate * vsize), vsize=vsize, nonce=i) for i, rate in enumerate(rates)]
    return make_test_block(txs), txs


class TestPercentileRanks:
    def test_bounds(self):
        ranks = percentile_ranks(5)
        assert ranks[0] == 0.0
        assert ranks[-1] == 100.0

    def test_single(self):
        assert percentile_ranks(1) == [0.0]

    def test_empty(self):
        assert percentile_ranks(0) == []


class TestPredictedOrder:
    def test_sorts_by_fee_rate(self, txf):
        _, txs = block_with_rates(txf, [5, 50, 20])
        ordered = predicted_order(txs)
        assert [t.fee_rate for t in ordered] == [50, 20, 5]

    def test_stable_on_ties(self, txf):
        _, txs = block_with_rates(txf, [10, 10, 10])
        assert predicted_order(txs) == txs


class TestBlockPpe:
    def test_perfectly_ordered_block_has_zero_ppe(self, txf):
        block, _ = block_with_rates(txf, [100, 50, 20, 10])
        result = block_ppe(block)
        assert result is not None
        assert result.ppe == pytest.approx(0.0)

    def test_reversed_block_has_max_ppe(self, txf):
        block, _ = block_with_rates(txf, [10, 20, 50, 100])
        result = block_ppe(block)
        # Fully reversed order of 4 txs: mean |shift| = 2 of 3 ranks = 66.7%.
        assert result.ppe == pytest.approx(200.0 / 3.0)

    def test_empty_block_returns_none(self):
        assert block_ppe(make_test_block([])) is None

    def test_tie_blocks_score_zero_any_order(self, txf):
        block, _ = block_with_rates(txf, [10, 10, 10, 10])
        assert block_ppe(block).ppe == pytest.approx(0.0)

    def test_cpfp_children_excluded_by_default(self, txf):
        parent = txf.tx(fee=10, vsize=100, nonce=1)
        child = txf.tx(fee=5000, vsize=100, parents=(parent.txid,), nonce=2)
        # Observed order: parent then child (package placement).
        block = make_test_block([parent, child])
        predictions = predict_block_positions(block)
        assert [p.txid for p in predictions] == [parent.txid]

    def test_involved_filter_drops_parents_too(self, txf):
        parent = txf.tx(fee=10, vsize=100, nonce=1)
        child = txf.tx(fee=5000, vsize=100, parents=(parent.txid,), nonce=2)
        block = make_test_block([parent, child])
        assert filter_block_transactions(block, CpfpFilter.INVOLVED) == []

    def test_none_filter_keeps_all(self, txf):
        parent = txf.tx(fee=10, vsize=100, nonce=1)
        child = txf.tx(fee=5000, vsize=100, parents=(parent.txid,), nonce=2)
        block = make_test_block([parent, child])
        assert len(filter_block_transactions(block, CpfpFilter.NONE)) == 2

    def test_prediction_for(self, txf):
        block, txs = block_with_rates(txf, [10, 100])
        prediction = prediction_for(block, txs[0].txid)
        assert prediction is not None
        assert prediction.signed_error == pytest.approx(100.0 - 0.0)
        assert prediction_for(block, "missing") is None

    def test_chain_ppe_skips_empty_blocks(self, txf):
        block, _ = block_with_rates(txf, [10, 100])
        empty = make_test_block([], height=0)
        results = chain_ppe([empty, block])
        assert len(results) == 1

    def test_summary(self, txf):
        blocks = [block_with_rates(txf, [100, 50])[0]]
        summary = summarize_ppe(chain_ppe(blocks))
        assert summary.block_count == 1
        assert summary.mean == pytest.approx(0.0)

    def test_summary_empty(self):
        summary = PpeSummary.from_values([])
        assert summary.block_count == 0


class TestSppe:
    def test_lifted_transaction_positive_sppe(self, txf):
        # A low-fee tx observed at the top: predicted bottom (100), observed 0.
        cheap = txf.tx(fee=10, vsize=100, nonce=1)
        rich1 = txf.tx(fee=1000, vsize=100, nonce=2)
        rich2 = txf.tx(fee=900, vsize=100, nonce=3)
        block = make_test_block([cheap, rich1, rich2])
        result = sppe([block], [cheap.txid])
        assert result.tx_count == 1
        assert result.sppe == pytest.approx(100.0)
        assert result.accelerated_fraction == 1.0

    def test_buried_transaction_negative_sppe(self, txf):
        rich = txf.tx(fee=1000, vsize=100, nonce=1)
        cheap1 = txf.tx(fee=10, vsize=100, nonce=2)
        cheap2 = txf.tx(fee=20, vsize=100, nonce=3)
        block = make_test_block([cheap1, cheap2, rich])
        result = sppe([block], [rich.txid])
        assert result.sppe == pytest.approx(-100.0)

    def test_honest_position_zero_sppe(self, txf):
        block, txs = block_with_rates(txf, [100, 50, 10])
        result = sppe([block], [txs[1].txid])
        assert result.sppe == pytest.approx(0.0)

    def test_absent_target_returns_nan(self, txf):
        block, _ = block_with_rates(txf, [100, 50])
        result = sppe([block], ["missing"])
        assert result.tx_count == 0
        assert result.sppe != result.sppe  # NaN

    def test_empty_set_accelerated_fraction_is_nan(self, txf):
        # An empty per-tx set is "no evidence", and must not read as the
        # 0.0 a genuinely never-lifted set would produce.
        block, _ = block_with_rates(txf, [100, 50])
        result = sppe([block], ["missing"])
        assert result.accelerated_fraction != result.accelerated_fraction
        # Degenerate accelerated_fraction agrees with degenerate sppe.
        assert (result.sppe != result.sppe) == (
            result.accelerated_fraction != result.accelerated_fraction
        )

    def test_per_transaction_sppe_covers_block(self, txf):
        block, txs = block_with_rates(txf, [100, 50, 10])
        errors = per_transaction_sppe([block])
        assert set(errors) == {t.txid for t in txs}
        assert all(e == pytest.approx(0.0) for e in errors.values())


class TestPredictionMemo:
    def test_memoised_predictions_match_direct_computation(self, txf):
        from repro.core.ppe import clear_prediction_cache, predictions_for

        block, _ = block_with_rates(txf, [100, 50, 10, 75])
        clear_prediction_cache()
        memoised = predictions_for(block)
        direct = tuple(predict_block_positions(block))
        assert memoised == direct
        # Second call returns the cached tuple, not a recomputation.
        assert predictions_for(block) is memoised
        clear_prediction_cache()

    def test_repeated_sppe_results_pinned_identical(self, txf):
        from repro.core.ppe import clear_prediction_cache

        cheap = txf.tx(fee=10, vsize=100, nonce=1)
        rich = txf.tx(fee=1000, vsize=100, nonce=2)
        block = make_test_block([cheap, rich])
        clear_prediction_cache()
        cold = sppe([block], [cheap.txid])  # populates the memo
        warm = sppe([block], [cheap.txid])  # served from the memo
        assert warm.sppe == cold.sppe
        assert warm.tx_count == cold.tx_count
        assert warm.per_tx == cold.per_tx
        clear_prediction_cache()

    def test_filters_memoised_independently(self, txf):
        from repro.core.ppe import clear_prediction_cache, predictions_for

        parent = txf.tx(fee=500, vsize=100, nonce=1)
        child = txf.tx(fee=2000, vsize=100, nonce=2, parents=(parent.txid,))
        block = make_test_block([child, parent])
        clear_prediction_cache()
        none_filter = predictions_for(block, CpfpFilter.NONE)
        children_filter = predictions_for(block, CpfpFilter.CHILDREN)
        assert len(none_filter) != len(children_filter)
        clear_prediction_cache()
