"""Unit tests for candidate neutrality norms and the norm verifier."""

import numpy as np
import pytest

from repro.core.neutrality import (
    NormReplayer,
    NormVerifier,
    evaluate_norm,
    gini_coefficient,
)
from repro.mining.gbt import BlockTemplate
from repro.mining.neutrality import (
    AgedFeeRatePolicy,
    FairShareRoundRobinPolicy,
    RandomLotteryPolicy,
    ValueDensityPolicy,
    candidate_norms,
)
from repro.mining.policies import FeeRatePolicy
from repro.mempool.mempool import MempoolEntry

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("neutrality")


class TestGini:
    def test_equal_values_zero(self):
        assert gini_coefficient([5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_concentration_near_one(self):
        assert gini_coefficient([0.0] * 99 + [100.0]) > 0.9

    def test_empty_nan(self):
        value = gini_coefficient([])
        assert value != value

    def test_all_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 2.0])

    def test_scale_invariant(self):
        values = [1.0, 3.0, 7.0, 12.0]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([v * 100 for v in values])
        )


class TestAgedFeeRate:
    def test_fresh_entries_match_fee_rate(self, txf):
        entries = [
            MempoolEntry(tx=txf.tx(fee=(i + 1) * 100, vsize=100), arrival_time=0.0)
            for i in range(5)
        ]
        aged = AgedFeeRatePolicy(20.0).build(entries)
        plain = FeeRatePolicy(package_selection=False).build(entries)
        assert aged.txids() == plain.txids()

    def test_old_transaction_outranks_fresh(self, txf):
        old_cheap = MempoolEntry(
            tx=txf.tx(fee=100, vsize=100), arrival_time=0.0
        )  # 1 sat/vB, 10 hours old
        fresh_rich = MempoolEntry(
            tx=txf.tx(fee=5000, vsize=100), arrival_time=36_000.0
        )  # 50 sat/vB, fresh
        template = AgedFeeRatePolicy(20.0).build([old_cheap, fresh_rich])
        assert template.txids()[0] == old_cheap.txid

    def test_empty(self):
        assert len(AgedFeeRatePolicy().build([])) == 0


class TestValueDensity:
    def test_ranks_by_value_not_fee(self, txf):
        poor_fee_big_value = MempoolEntry(
            tx=txf.tx(fee=10, vsize=100, value=10**9), arrival_time=0.0
        )
        rich_fee_small_value = MempoolEntry(
            tx=txf.tx(fee=9000, vsize=100, value=10), arrival_time=0.0
        )
        template = ValueDensityPolicy().build(
            [rich_fee_small_value, poor_fee_big_value]
        )
        assert template.txids()[0] == poor_fee_big_value.txid


class TestFairShare:
    def test_low_band_gets_space_under_contention(self, txf):
        low = [
            MempoolEntry(tx=txf.tx(fee=200, vsize=100), arrival_time=float(i))
            for i in range(10)
        ]  # 2 sat/vB
        high = [
            MempoolEntry(tx=txf.tx(fee=50_000, vsize=100), arrival_time=float(i))
            for i in range(10)
        ]  # 500 sat/vB
        template = FairShareRoundRobinPolicy().build(low + high, max_vsize=1000)
        committed_rates = [tx.fee_rate for tx in template.transactions]
        assert any(rate < 10 for rate in committed_rates)
        assert any(rate > 100 for rate in committed_rates)

    def test_pure_feerate_would_starve_low_band(self, txf):
        low = [
            MempoolEntry(tx=txf.tx(fee=200, vsize=100), arrival_time=float(i))
            for i in range(10)
        ]
        high = [
            MempoolEntry(tx=txf.tx(fee=50_000, vsize=100), arrival_time=float(i))
            for i in range(10)
        ]
        template = FeeRatePolicy(package_selection=False).build(
            low + high, max_vsize=1000
        )
        assert all(tx.fee_rate > 100 for tx in template.transactions)

    def test_unused_share_redistributed(self, txf):
        # Only high-fee traffic exists: it may use the whole block.
        high = [
            MempoolEntry(tx=txf.tx(fee=50_000, vsize=100), arrival_time=0.0)
            for _ in range(10)
        ]
        template = FairShareRoundRobinPolicy().build(high, max_vsize=1000)
        assert template.total_vsize == 1000


class TestLottery:
    def test_selection_is_fee_blind(self, txf):
        entries = [
            MempoolEntry(tx=txf.tx(fee=(i + 1) * 100, vsize=100), arrival_time=0.0)
            for i in range(30)
        ]
        policy = RandomLotteryPolicy(rng=np.random.default_rng(3))
        template = policy.build(entries, max_vsize=1500)
        rates = [tx.fee_rate for tx in template.transactions]
        assert rates != sorted(rates, reverse=True)

    def test_candidate_norms_complete(self):
        norms = candidate_norms()
        assert set(norms) == {
            "fee-rate",
            "aged-fee-rate",
            "value-density",
            "fair-share",
            "lottery",
        }
        assert all(hasattr(policy, "build") for policy in norms.values())


class TestReplayer:
    def _replayer(self, txf, count=30):
        arrivals = [
            (float(i * 10), txf.tx(fee=(i % 5 + 1) * 300, vsize=200))
            for i in range(count)
        ]
        block_times = [100.0, 200.0, 300.0, 400.0]
        return NormReplayer(arrivals, block_times, max_block_vsize=1200), arrivals

    def test_replay_commits_under_capacity(self, txf):
        replayer, _ = self._replayer(txf)
        outcome = replayer.replay(FeeRatePolicy(package_selection=False))
        # 4 blocks x 1000 vB budget / 200 vB = at most 20 commits.
        assert 0 < len(outcome["delays"]) <= 20

    def test_delays_start_at_one(self, txf):
        replayer, _ = self._replayer(txf)
        outcome = replayer.replay(FeeRatePolicy(package_selection=False))
        assert min(outcome["delays"].values()) == 1

    def test_revenue_accumulates(self, txf):
        replayer, _ = self._replayer(txf)
        outcome = replayer.replay(FeeRatePolicy(package_selection=False))
        assert outcome["revenue"] > 0

    def test_evaluate_norm_fields(self, txf):
        replayer, _ = self._replayer(txf)
        baseline = replayer.replay(FeeRatePolicy(package_selection=False))
        evaluation = evaluate_norm(
            "fee-rate",
            FeeRatePolicy(package_selection=False),
            replayer,
            feerate_revenue=baseline["revenue"],
        )
        assert evaluation.revenue_vs_feerate_optimum == pytest.approx(1.0)
        assert evaluation.committed == len(baseline["delays"])
        assert evaluation.blocks == 4


class TestNormVerifier:
    def test_conformant_block_scores_high(self, txf):
        txs = [txf.tx(fee=(30 - i) * 100, vsize=100) for i in range(20)]
        block = make_test_block(txs)
        verifier = NormVerifier({tx.txid: 0.0 for tx in txs})
        result = verifier.verify(
            "honest",
            "fee-rate",
            FeeRatePolicy(package_selection=False),
            [block],
            future_blocks=[block],
        )
        assert result.selection_agreement == pytest.approx(1.0)
        assert result.ordering_agreement == pytest.approx(1.0)
        assert result.conforms()

    def test_reversed_block_scores_low_on_ordering(self, txf):
        txs = [txf.tx(fee=(i + 1) * 100, vsize=100) for i in range(20)]
        block = make_test_block(txs)  # ascending fee order = reversed norm
        verifier = NormVerifier({tx.txid: 0.0 for tx in txs})
        result = verifier.verify(
            "reverser",
            "fee-rate",
            FeeRatePolicy(package_selection=False),
            [block],
            future_blocks=[block],
        )
        assert result.selection_agreement == pytest.approx(1.0)
        assert result.ordering_agreement < 0.2
        assert not result.conforms()

    def test_sampling_limits_blocks(self, txf):
        blocks = []
        prev = "0" * 64
        for height in range(6):
            txs = [txf.tx(fee=(i + 1) * 100, vsize=100) for i in range(5)]
            block = make_test_block(
                txs, height=height, prev_hash=prev, timestamp=float(height)
            )
            blocks.append(block)
            prev = block.block_hash
        verifier = NormVerifier({})
        result = verifier.verify(
            "p",
            "fee-rate",
            FeeRatePolicy(package_selection=False),
            blocks,
            future_blocks=blocks,
            sample=3,
        )
        assert result.blocks_checked == 3
