"""Meta-tests of the adversary-zoo detection scorecard.

The scorecard is itself a measuring instrument, so it gets the same
treatment the detectors give the pools: an all-honest lineup must stay
below alpha in every cell (measured false-positive rate), a maximal-
intensity self-interest adversary must be caught with power ~ 1, and a
silently *broken* detector — one that stops firing, or fires on honest
data — must flip a calibration check.  The statistical cells run a
small real sweep; the broken-detector cases feed synthetic matrices
through :func:`repro.analysis.ext_adversaries.scorecard_checks`.
"""

from __future__ import annotations

import pytest

from repro.analysis.ext_adversaries import (
    DEFAULT_ALPHA,
    TESTS,
    AdversaryCell,
    DetectionMatrix,
    detection_pvalues,
    render_matrix,
    scorecard_checks,
    sweep_detection_matrix,
)
from repro.datasets.builder import build_dataset
from repro.simulation.scenarios import ADVERSARY_KINDS, adversary_scenario

SMOKE_KINDS = ("honest", "fifo", "max-boost", "selfish")
SMOKE_SCALE = 0.05


@pytest.fixture(scope="module")
def smoke_matrix() -> DetectionMatrix:
    """One-seed, full-intensity sweep over a representative zoo subset."""
    return sweep_detection_matrix(
        scale=SMOKE_SCALE,
        kinds=SMOKE_KINDS,
        seeds=(11,),
        intensities=(1.0,),
    )


class TestRealSweep:
    def test_matrix_covers_every_cell(self, smoke_matrix):
        assert len(smoke_matrix.cells) == len(SMOKE_KINDS) * len(TESTS)
        assert {c.kind for c in smoke_matrix.cells} == set(SMOKE_KINDS)
        assert all(c.runs == 1 for c in smoke_matrix.cells)

    def test_honest_lineup_false_positive_rate_is_bounded(self, smoke_matrix):
        honest = smoke_matrix.row("honest")
        assert len(honest) == len(TESTS)
        for cell in honest:
            assert cell.is_honest
            assert cell.rate <= smoke_matrix.alpha

    def test_maximal_self_interest_reaches_full_power(self, smoke_matrix):
        cell = smoke_matrix.cell("max-boost", "accel")
        assert cell is not None
        assert cell.rate == 1.0

    def test_selfish_mining_is_invisible_to_ordering_tests(self, smoke_matrix):
        for test in ("accel", "decel"):
            cell = smoke_matrix.cell("selfish", test)
            assert cell is not None and cell.rate == 0.0
        # At the smoke scale the share binomial has too few blocks to
        # clear alpha=0.01, but its p-value must still stand far out
        # from the honest lineup's (the full sweep reaches power at
        # scale 0.08 — see ext_adversaries.run's calibration checks).
        share = smoke_matrix.cell("selfish", "share")
        honest_share = smoke_matrix.cell("honest", "share")
        assert share is not None and honest_share is not None
        assert share.mean_p < 0.05 < honest_share.mean_p

    def test_csv_has_explicit_power_and_fpr_columns(self, smoke_matrix):
        lines = smoke_matrix.to_csv().strip().splitlines()
        assert lines[0] == "kind,test,target_pool,runs,power,fpr,mean_p"
        assert len(lines) == 1 + len(smoke_matrix.cells)
        for line in lines[1:]:
            kind, _test, _pool, _runs, power, fpr, _mean_p = line.split(",")
            if kind == "honest":
                assert power == "" and fpr != ""
            else:
                assert power != "" and fpr == ""

    def test_render_names_the_honest_row_and_blind_spots(self, smoke_matrix):
        rendered = render_matrix(smoke_matrix)
        assert "honest (FPR)" in rendered
        assert "blind spots" in rendered

    def test_detector_battery_is_complete_on_one_dataset(self):
        dataset = build_dataset(
            adversary_scenario("honest", seed=11, scale=SMOKE_SCALE)
        )
        pvalues = detection_pvalues(dataset, "F2Pool", 0.2)
        assert set(pvalues) == set(TESTS)
        assert all(0.0 <= p <= 1.0 for p in pvalues.values())


class TestSweepValidation:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary kind"):
            sweep_detection_matrix(kinds=("honest", "quantum"))

    def test_empty_seed_list_is_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            sweep_detection_matrix(seeds=())


# ----------------------------------------------------------------------
# The scorecard's own calibration checks, against synthetic matrices
# ----------------------------------------------------------------------

#: Rates mirroring a healthy default sweep (see ext_adversaries.run).
HEALTHY_RATES = {
    ("max-boost", "accel"): 1.0,
    ("max-boost", "ppe"): 0.5,
    ("fifo", "ppe"): 1.0,
    ("fifo", "insert"): 0.5,
    ("call-auction", "ppe"): 1.0,
    ("bucketed", "ppe"): 0.5,
    ("sandwich", "insert"): 0.25,
    ("censor-for-rent", "decel"): 0.75,
    ("selfish", "share"): 0.5,
}


def synthetic_matrix(overrides: dict | None = None) -> DetectionMatrix:
    rates = dict(HEALTHY_RATES)
    rates.update(overrides or {})
    matrix = DetectionMatrix(
        target_pool="F2Pool",
        alpha=DEFAULT_ALPHA,
        scale=0.08,
        kinds=tuple(ADVERSARY_KINDS),
    )
    for kind in ADVERSARY_KINDS:
        for test in TESTS:
            rate = rates.get((kind, test), 0.0)
            matrix.cells.append(
                AdversaryCell(
                    kind=kind,
                    test=test,
                    target_pool="F2Pool",
                    rate=rate,
                    mean_p=1.0 - rate,
                    runs=4,
                )
            )
    return matrix


def failing_descriptions(matrix: DetectionMatrix) -> list[str]:
    return [c.description for c in scorecard_checks(matrix) if not c.passed]


class TestScorecardChecks:
    def test_healthy_matrix_passes_every_check(self):
        assert failing_descriptions(synthetic_matrix()) == []

    def test_honest_false_positives_flip_the_calibration_check(self):
        broken = synthetic_matrix({("honest", "ppe"): 0.25})
        assert any(
            "false-positive" in d for d in failing_descriptions(broken)
        )

    def test_silently_broken_accel_detector_is_caught(self):
        """If the acceleration binomial stops firing, the scorecard says so."""
        broken = synthetic_matrix({("max-boost", "accel"): 0.0})
        assert any(
            "caught outright" in d for d in failing_descriptions(broken)
        )

    def test_silently_broken_ppe_detector_is_caught(self):
        broken = synthetic_matrix(
            {("fifo", "ppe"): 0.0, ("call-auction", "ppe"): 0.0}
        )
        assert any("PPE sign test" in d for d in failing_descriptions(broken))

    def test_ordering_test_seeing_selfish_mining_is_suspicious(self):
        """Ordering detectors firing on a consensus attack = broken test."""
        broken = synthetic_matrix({("selfish", "accel"): 1.0})
        assert any("selfish" in d for d in failing_descriptions(broken))

    def test_missing_cells_flip_the_coverage_check(self):
        matrix = synthetic_matrix()
        matrix.cells = [c for c in matrix.cells if c.kind != "sandwich"]
        assert any("covers every" in d for d in failing_descriptions(matrix))
