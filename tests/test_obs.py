"""Unit tests for the repro.obs metrics registry and invariant gate."""

import json
import os

import pytest

from repro import obs
from repro.obs import invariants
from repro.obs.registry import (
    TRACE_ENV,
    ObsRegistry,
    delta,
    render_report,
)


@pytest.fixture
def reg():
    return ObsRegistry(enabled=True)


class TestRecording:
    def test_disabled_registry_records_nothing(self):
        off = ObsRegistry(enabled=False)
        off.counter("a")
        off.gauge("b", 3.0)
        off.gauge_max("c", 9.0)
        with off.span("d"):
            pass
        snap = off.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["spans"] == {}

    def test_disabled_span_is_shared_null_object(self):
        off = ObsRegistry(enabled=False)
        assert off.span("x") is off.span("y")

    def test_counters_accumulate(self, reg):
        reg.counter("events")
        reg.counter("events")
        reg.counter("events", 5)
        assert reg.snapshot()["counters"] == {"events": 7}

    def test_gauge_last_value_wins(self, reg):
        reg.gauge("depth", 10.0)
        reg.gauge("depth", 3.0)
        assert reg.snapshot()["gauges"] == {"depth": 3.0}

    def test_gauge_max_keeps_peak(self, reg):
        reg.gauge_max("peak", 10.0)
        reg.gauge_max("peak", 3.0)
        reg.gauge_max("peak", 12.0)
        assert reg.snapshot()["gauges"] == {"peak": 12.0}

    def test_span_folds_count_total_max(self, reg):
        for _ in range(3):
            with reg.span("work"):
                pass
        stats = reg.snapshot()["spans"]["work"]
        assert stats["count"] == 3
        assert stats["total_seconds"] >= 0.0
        assert stats["max_seconds"] <= stats["total_seconds"] + 1e-12

    def test_span_records_even_when_block_raises(self, reg):
        with pytest.raises(RuntimeError):
            with reg.span("risky"):
                raise RuntimeError("boom")
        assert reg.snapshot()["spans"]["risky"]["count"] == 1

    def test_reset_clears_everything(self, reg):
        reg.counter("a")
        reg.gauge("b", 1.0)
        with reg.span("c"):
            pass
        reg.reset()
        snap = reg.snapshot()
        assert (snap["counters"], snap["gauges"], snap["spans"]) == ({}, {}, {})

    def test_snapshot_is_json_serialisable_and_sorted(self, reg):
        reg.counter("zebra")
        reg.counter("apple")
        snap = reg.snapshot()
        json.dumps(snap)
        assert list(snap["counters"]) == ["apple", "zebra"]
        assert snap["version"] == 1


class TestDeltaAndMerge:
    def test_delta_subtracts_counters_and_span_counts(self, reg):
        reg.counter("n", 3)
        with reg.span("s"):
            pass
        before = reg.snapshot()
        reg.counter("n", 2)
        reg.counter("fresh")
        with reg.span("s"):
            pass
        diff = delta(before, reg.snapshot())
        assert diff["counters"] == {"n": 2, "fresh": 1}
        assert diff["spans"]["s"]["count"] == 1

    def test_delta_drops_zero_entries(self, reg):
        reg.counter("quiet", 4)
        before = reg.snapshot()
        diff = delta(before, reg.snapshot())
        assert diff["counters"] == {}
        assert diff["spans"] == {}

    def test_merge_adds_counters_and_keeps_gauge_max(self, reg):
        reg.counter("n", 1)
        reg.gauge_max("peak", 5.0)
        worker = ObsRegistry(enabled=True)
        worker.counter("n", 4)
        worker.counter("only_worker", 2)
        worker.gauge_max("peak", 3.0)
        with worker.span("s"):
            pass
        reg.merge(worker.snapshot())
        snap = reg.snapshot()
        assert snap["counters"] == {"n": 5, "only_worker": 2}
        assert snap["gauges"] == {"peak": 5.0}
        assert snap["spans"]["s"]["count"] == 1

    def test_merge_spans_add_counts_and_totals(self, reg):
        with reg.span("s"):
            pass
        other = ObsRegistry(enabled=True)
        with other.span("s"):
            pass
        with other.span("s"):
            pass
        reg.merge(other.snapshot())
        assert reg.snapshot()["spans"]["s"]["count"] == 3

    def test_worker_roundtrip_parent_plus_delta(self, reg):
        """The runner protocol: worker snapshots before/after, parent
        merges the delta — the parent total must equal doing the work
        locally."""
        local = ObsRegistry(enabled=True)
        local.counter("x", 2)
        worker = ObsRegistry(enabled=True)
        worker.counter("x", 1)  # pre-existing worker state
        before = worker.snapshot()
        worker.counter("x", 3)  # the actual work
        local.merge(delta(before, worker.snapshot()))
        assert local.snapshot()["counters"]["x"] == 5


class TestRenderReport:
    def test_report_sections_and_values(self, reg):
        reg.counter("mempool.offer.accepted", 42)
        reg.gauge_max("mempool.peak_vsize", 123456.0)
        with reg.span("engine.mine_block"):
            pass
        text = render_report(reg.snapshot())
        assert "repro.obs report" in text
        assert "counters (1):" in text
        assert "mempool.offer.accepted" in text and "42" in text
        assert "gauges (1):" in text
        assert "spans (1):" in text
        assert "mean_ms" in text

    def test_empty_snapshot_renders(self):
        text = render_report(ObsRegistry(enabled=True).snapshot())
        assert "counters (0):" in text


class TestModuleSingleton:
    def test_tracing_context_restores_disabled_state(self):
        assert not obs.is_enabled()
        had_env = os.environ.get(TRACE_ENV)
        with obs.tracing(reset=True):
            assert obs.is_enabled()
            assert os.environ.get(TRACE_ENV) == "1"
            obs.counter("inside")
            assert obs.snapshot()["counters"] == {"inside": 1}
        assert not obs.is_enabled()
        assert os.environ.get(TRACE_ENV) == had_env

    def test_module_calls_noop_while_disabled(self):
        obs.reset()
        obs.counter("ignored")
        obs.gauge("ignored", 1.0)
        with obs.span("ignored"):
            pass
        assert obs.snapshot()["counters"] == {}

    def test_merge_tolerates_none(self):
        obs.merge(None)  # worker that was not tracing reports None


class TestInvariantGate:
    def test_force_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(invariants.CHECK_ENV, "0")
        invariants.force(True)
        try:
            assert invariants.invariants_enabled()
            invariants.force(False)
            monkeypatch.setenv(invariants.CHECK_ENV, "1")
            assert not invariants.invariants_enabled()
        finally:
            invariants.force(True)  # conftest keeps checks on suite-wide

    def test_env_gate(self, monkeypatch):
        invariants.force(None)
        try:
            monkeypatch.delenv(invariants.CHECK_ENV, raising=False)
            assert not invariants.invariants_enabled()
            monkeypatch.setenv(invariants.CHECK_ENV, "1")
            assert invariants.invariants_enabled()
            monkeypatch.setenv(invariants.CHECK_ENV, "0")
            assert not invariants.invariants_enabled()
        finally:
            invariants.force(True)

    def test_violation_is_assertion_error(self):
        assert issubclass(obs.InvariantViolation, AssertionError)
