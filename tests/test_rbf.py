"""Tests for replace-by-fee: mempool rules, chain guards, engine races."""

import pytest

from repro.chain.blockchain import Blockchain, ChainValidationError
from repro.chain.transaction import TransactionBuilder
from repro.datasets.records import LABEL_RBF_BUMP, LABEL_RBF_ORIGINAL
from repro.mempool.mempool import Mempool, RejectionReason

from conftest import make_test_block


@pytest.fixture
def builder():
    return TransactionBuilder("rbf")


def original_and_bump(builder, fee=200, bump_fee=4000, vsize=200):
    original = builder.build("dest", 10_000, fee=fee, vsize=vsize, nonce=1)
    bump = builder.replacement(original, fee=bump_fee)
    return original, bump


class TestReplacementBuilder:
    def test_same_inputs_new_txid(self, builder):
        original, bump = original_and_bump(builder)
        assert bump.inputs == original.inputs
        assert bump.txid != original.txid
        assert bump.fee > original.fee

    def test_outputs_preserved(self, builder):
        original, bump = original_and_bump(builder)
        assert bump.outputs == original.outputs


class TestMempoolRbf:
    def test_valid_bump_replaces(self, builder):
        pool = Mempool(min_fee_rate=0.0)
        original, bump = original_and_bump(builder)
        pool.offer(original, now=0.0)
        result = pool.offer(bump, now=10.0)
        assert result.accepted
        assert result.replaced == (original.txid,)
        assert original.txid not in pool
        assert bump.txid in pool

    def test_underpaying_bump_rejected(self, builder):
        pool = Mempool(min_fee_rate=0.0)
        original, _ = original_and_bump(builder, fee=1000)
        weak = builder.replacement(original, fee=1000)  # equal fee
        pool.offer(original, now=0.0)
        result = pool.offer(weak, now=10.0)
        assert not result.accepted
        assert result.reason == RejectionReason.INSUFFICIENT_REPLACEMENT
        assert original.txid in pool

    def test_higher_fee_lower_rate_rejected(self, builder):
        # More total fee but a *lower* fee-rate (bigger tx) fails BIP-125.
        pool = Mempool(min_fee_rate=0.0)
        original = builder.build("dest", 10_000, fee=1000, vsize=100, nonce=7)
        bloated = builder.replacement(original, fee=1100, vsize=2000)
        pool.offer(original, now=0.0)
        result = pool.offer(bloated, now=1.0)
        assert not result.accepted

    def test_rbf_disabled(self, builder):
        pool = Mempool(min_fee_rate=0.0, allow_rbf=False)
        original, bump = original_and_bump(builder)
        pool.offer(original, now=0.0)
        assert not pool.offer(bump, now=1.0).accepted

    def test_accounting_after_replacement(self, builder):
        pool = Mempool(min_fee_rate=0.0)
        original, bump = original_and_bump(builder)
        pool.offer(original, now=0.0)
        pool.offer(bump, now=1.0)
        assert pool.total_fees == bump.fee
        assert pool.total_vsize == bump.vsize

    def test_conflicts_of(self, builder):
        pool = Mempool(min_fee_rate=0.0)
        original, bump = original_and_bump(builder)
        pool.offer(original, now=0.0)
        assert pool.conflicts_of(bump) == [original.txid]
        unrelated = builder.build("x", 1, fee=100, vsize=100, nonce=9)
        assert pool.conflicts_of(unrelated) == []

    def test_spender_index_cleared_on_removal(self, builder):
        pool = Mempool(min_fee_rate=0.0)
        original, bump = original_and_bump(builder)
        pool.offer(original, now=0.0)
        pool.remove(original.txid)
        # With the original gone, the bump is no longer a replacement.
        result = pool.offer(bump, now=1.0)
        assert result.accepted
        assert result.replaced == ()


class TestChainDoubleSpendGuard:
    def test_conflicting_commits_rejected(self, builder):
        original, bump = original_and_bump(builder)
        chain = Blockchain()
        chain.append(make_test_block([original], height=0, timestamp=0.0))
        conflicting = make_test_block(
            [bump], height=1, prev_hash=chain.tip_hash, timestamp=1.0
        )
        with pytest.raises(ChainValidationError):
            chain.append(conflicting)

    def test_same_block_double_spend_rejected(self, builder):
        original, bump = original_and_bump(builder)
        block = make_test_block([original, bump], height=0, timestamp=0.0)
        with pytest.raises(ChainValidationError):
            Blockchain([block])

    def test_is_spent(self, builder):
        original, _ = original_and_bump(builder)
        chain = Blockchain()
        chain.append(make_test_block([original], height=0, timestamp=0.0))
        assert chain.is_spent(original.inputs[0].prevout)


class TestEngineRbf:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.simulation.scenarios import dataset_b_scenario

        return dataset_b_scenario(seed=99, scale=0.05).run().dataset

    def test_bump_populations_exist(self, dataset):
        assert dataset.labelled_txids(LABEL_RBF_BUMP)
        assert dataset.labelled_txids(LABEL_RBF_ORIGINAL)

    def test_commits_are_mutually_exclusive(self, dataset):
        # An original and its bump spend the same outpoint, so the chain
        # must contain at most one of each pair.  Pair them by inputs.
        bumps = dataset.labelled_txids(LABEL_RBF_BUMP)
        committed_bump_inputs = {
            dataset.chain.transaction(b).inputs
            for b in bumps
            if dataset.tx_records[b].committed
        }
        for original in dataset.labelled_txids(LABEL_RBF_ORIGINAL):
            if not dataset.tx_records[original].committed:
                continue
            tx = dataset.chain.transaction(original)
            assert tx.inputs not in committed_bump_inputs

    def test_every_pair_resolves_exactly_one_way(self, dataset):
        # Each (original, bump) pair either committed one of the two or
        # is still pending; at least some bumps won their race.
        bumps = dataset.labelled_txids(LABEL_RBF_BUMP)
        committed_bumps = sum(
            1 for t in bumps if dataset.tx_records[t].committed
        )
        assert committed_bumps > 0

    def test_committed_bumps_paid_more(self, dataset):
        # Any bump that committed pays a strictly higher fee than its
        # (displaced) original offered.
        originals = {
            dataset.tx_records[t]
            for t in dataset.labelled_txids(LABEL_RBF_ORIGINAL)
        }
        min_orig_rate = min(r.fee_rate for r in originals)
        for txid in dataset.labelled_txids(LABEL_RBF_BUMP):
            record = dataset.tx_records[txid]
            if record.committed:
                assert record.fee_rate > min_orig_rate
