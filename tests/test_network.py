"""Unit tests for latency models, full nodes, and P2P gossip."""

import numpy as np
import pytest

from repro.network.events import EventScheduler
from repro.network.latency import (
    BlockRelayLatency,
    ConstantLatency,
    LogNormalLatency,
    SlowPeerLatency,
)
from repro.network.node import FullNode, NodeConfig, make_observer
from repro.network.p2p import build_network

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("network")


class TestLatencyModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        assert ConstantLatency(0.7).delay(rng) == 0.7

    def test_lognormal_positive_and_capped(self):
        rng = np.random.default_rng(0)
        model = LogNormalLatency(max_seconds=5.0)
        delays = [model.delay(rng) for _ in range(500)]
        assert all(0.0 < d <= 5.0 for d in delays)

    def test_lognormal_median_near_target(self):
        rng = np.random.default_rng(0)
        model = LogNormalLatency(median_seconds=0.4)
        delays = [model.delay(rng) for _ in range(3000)]
        assert 0.3 < float(np.median(delays)) < 0.55

    def test_slow_peer_adds_tail(self):
        rng = np.random.default_rng(0)
        model = SlowPeerLatency(
            base=ConstantLatency(0.1),
            slow_probability=0.5,
            slow_extra_seconds=10.0,
        )
        delays = [model.delay(rng) for _ in range(500)]
        assert max(delays) > 1.0
        assert min(delays) == pytest.approx(0.1)

    def test_block_relay_faster_than_tx_gossip(self):
        rng = np.random.default_rng(0)
        tx_model = LogNormalLatency()
        block_model = BlockRelayLatency()
        tx_delays = np.median([tx_model.delay(rng) for _ in range(2000)])
        block_delays = np.median([block_model.delay(rng) for _ in range(2000)])
        assert block_delays < tx_delays


class TestFullNode:
    def test_connect_respects_capacity(self):
        a = FullNode(NodeConfig(name="a", max_peers=1))
        b = FullNode(NodeConfig(name="b", max_peers=1))
        c = FullNode(NodeConfig(name="c", max_peers=1))
        assert a.connect(b)
        assert not a.connect(c)  # a is full
        assert not b.connect(c)  # b is full

    def test_connect_rejects_self_and_duplicates(self):
        a = FullNode(NodeConfig(name="a"))
        b = FullNode(NodeConfig(name="b"))
        assert not a.connect(a)
        assert a.connect(b)
        assert not a.connect(b)

    def test_accept_transaction_dedupes(self, txf):
        node = FullNode(NodeConfig(name="n"))
        tx = txf.tx()
        assert node.accept_transaction(tx, now=0.0)
        assert not node.accept_transaction(tx, now=1.0)

    def test_low_fee_not_relayed(self, txf):
        node = FullNode(NodeConfig(name="n", min_fee_rate=1.0))
        assert not node.accept_transaction(txf.tx(fee=0), now=0.0)

    def test_accept_block_removes_confirmed(self, txf):
        node = FullNode(NodeConfig(name="n"))
        tx = txf.tx()
        node.accept_transaction(tx, now=0.0)
        block = make_test_block([tx])
        assert node.accept_block(block, now=1.0)
        assert tx.txid not in node.mempool
        assert not node.accept_block(block, now=2.0)  # dedupe

    def test_observer_snapshots(self, txf):
        node = make_observer("obs")
        node.accept_transaction(txf.tx(), now=0.0)
        assert node.maybe_snapshot(0.0)
        assert not node.maybe_snapshot(5.0)
        assert node.maybe_snapshot(15.0)
        assert len(node.snapshot_store()) == 2

    def test_non_observer_has_no_store(self):
        node = FullNode(NodeConfig(name="n"))
        with pytest.raises(ValueError):
            node.snapshot_store()


class TestP2PNetwork:
    def _network(self, count=8, seed=0):
        nodes = [FullNode(NodeConfig(name=f"n{i}", max_peers=8)) for i in range(count)]
        return build_network(nodes, np.random.default_rng(seed), target_degree=4)

    def test_topology_connected(self):
        import networkx as nx

        network = self._network(count=12)
        assert nx.is_connected(network.graph())

    def test_duplicate_names_rejected(self):
        nodes = [FullNode(NodeConfig(name="same")) for _ in range(2)]
        with pytest.raises(ValueError):
            build_network(nodes, np.random.default_rng(0))

    def test_transaction_floods_everywhere(self, txf):
        network = self._network()
        scheduler = EventScheduler()
        tx = txf.tx()
        network.broadcast_transaction(tx, network.nodes[0], scheduler)
        scheduler.run()
        assert all(node.has_seen_tx(tx.txid) for node in network.nodes)

    def test_arrival_times_differ_across_nodes(self, txf):
        network = self._network()
        scheduler = EventScheduler()
        tx = txf.tx()
        network.broadcast_transaction(tx, network.nodes[0], scheduler)
        scheduler.run()
        arrivals = {
            node.name: node.mempool.arrival_time(tx.txid)
            for node in network.nodes
        }
        values = [v for v in arrivals.values() if v is not None]
        assert len(set(values)) > 1  # propagation skew exists

    def test_block_floods_and_clears_mempools(self, txf):
        network = self._network()
        scheduler = EventScheduler()
        tx = txf.tx()
        network.broadcast_transaction(tx, network.nodes[0], scheduler)
        scheduler.run()
        block = make_test_block([tx])
        network.broadcast_block(block, network.nodes[0], scheduler)
        scheduler.run()
        assert all(node.blocks_seen == 1 for node in network.nodes)
        assert all(tx.txid not in node.mempool for node in network.nodes)

    def test_target_degree_must_fit_node_count(self):
        nodes = [FullNode(NodeConfig(name=f"n{i}")) for i in range(3)]
        with pytest.raises(ValueError, match="target_degree must be between"):
            build_network(nodes, np.random.default_rng(0), target_degree=3)

    def test_target_degree_must_be_positive(self):
        nodes = [FullNode(NodeConfig(name=f"n{i}")) for i in range(3)]
        with pytest.raises(ValueError, match="target_degree must be between"):
            build_network(nodes, np.random.default_rng(0), target_degree=0)

    def test_maximum_valid_target_degree_accepted(self):
        nodes = [FullNode(NodeConfig(name=f"n{i}")) for i in range(4)]
        network = build_network(nodes, np.random.default_rng(0), target_degree=3)
        assert all(node.peers for node in network.nodes)

    def test_scheduled_snapshots(self, txf):
        nodes = [make_observer("obs"), FullNode(NodeConfig(name="other"))]
        network = build_network(nodes, np.random.default_rng(0), target_degree=1)
        scheduler = EventScheduler()
        network.schedule_snapshots(scheduler, end_time=45.0)
        scheduler.run_until(46.0)
        assert len(nodes[0].snapshot_store()) >= 3
