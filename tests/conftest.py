"""Shared fixtures: tiny chains, blocks, and scaled-down scenario datasets."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_HASH, Block, build_block
from repro.chain.transaction import (
    CoinbaseTransaction,
    Transaction,
    TransactionBuilder,
    TxOutput,
    make_coinbase,
)
from repro.datasets.builder import (
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
)
from repro.mempool.mempool import MempoolEntry


@pytest.fixture(autouse=True, scope="session")
def _always_check_invariants():
    """Keep ``REPRO_AUDIT_CHECK`` invariant checking on for every test.

    The mempool/engine state machines self-verify after mutations, so
    any test exercising them doubles as an invariant test — a
    bookkeeping bug anywhere in the suite surfaces as an
    ``InvariantViolation`` instead of a silently skewed audit.
    """
    from repro.obs import invariants

    invariants.force(True)
    yield
    invariants.force(None)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ fixtures from the current code "
        "instead of diffing against them",
    )


class TxFactory:
    """Deterministic transaction factory for unit tests."""

    def __init__(self, namespace: str = "test") -> None:
        self._builder = TransactionBuilder(namespace=namespace)
        self._counter = 0

    def tx(
        self,
        fee: int = 1000,
        vsize: int = 250,
        to_address: str = "addr-x",
        parents: tuple[str, ...] = (),
        value: int = 100_000,
        nonce: int = 0,
    ) -> Transaction:
        self._counter += 1
        return self._builder.build(
            to_address=to_address,
            value=value,
            fee=fee,
            vsize=vsize,
            extra_parents=list(parents),
            nonce=nonce * 1_000_003 + self._counter,
        )

    def entry(
        self,
        fee: int = 1000,
        vsize: int = 250,
        arrival: float = 0.0,
        **kwargs,
    ) -> MempoolEntry:
        return MempoolEntry(tx=self.tx(fee=fee, vsize=vsize, **kwargs), arrival_time=arrival)


@pytest.fixture
def txf() -> TxFactory:
    return TxFactory()


def make_test_block(
    transactions,
    height: int = 0,
    prev_hash: str = GENESIS_HASH,
    timestamp: float = 0.0,
    marker: str = "/TestPool/",
) -> Block:
    """Assemble a block around pre-built transactions."""
    coinbase = make_coinbase(
        reward_address="pool-reward",
        value=50 * 100_000_000,
        marker=marker,
        height=height,
    )
    return build_block(
        height=height,
        prev_hash=prev_hash,
        timestamp=timestamp,
        coinbase=coinbase,
        transactions=list(transactions),
    )


@pytest.fixture
def block_factory():
    return make_test_block


# ----------------------------------------------------------------------
# Scaled-down scenario datasets, built once per test session.
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_dataset_a():
    return build_dataset_a(scale=0.06)


@pytest.fixture(scope="session")
def small_dataset_b():
    return build_dataset_b(scale=0.06)


@pytest.fixture(scope="session")
def small_dataset_c():
    return build_dataset_c(scale=0.08)
