"""Unit tests for the binomial prioritization tests (cross-checked vs scipy)."""

import math

import pytest
from scipy.stats import binom

from repro.core.stattests import (
    binom_tail_lower,
    binom_tail_upper,
    c_blocks_for,
    fishers_method,
    log_binom_coefficient,
    log_binom_pmf,
    normal_tail_lower,
    normal_tail_upper,
    prioritization_test,
    windowed_prioritization_test,
)


class TestLogBinomials:
    def test_coefficient_matches_math_comb(self):
        for n, k in [(10, 3), (50, 25), (200, 7)]:
            assert log_binom_coefficient(n, k) == pytest.approx(
                math.log(math.comb(n, k))
            )

    def test_coefficient_out_of_range(self):
        assert log_binom_coefficient(5, 6) == float("-inf")
        assert log_binom_coefficient(5, -1) == float("-inf")

    def test_pmf_matches_scipy(self):
        for n, p in [(20, 0.1), (100, 0.5), (500, 0.03)]:
            for k in (0, 1, n // 2, n):
                expected = binom.logpmf(k, n, p)
                assert log_binom_pmf(k, n, p) == pytest.approx(expected, abs=1e-9)

    def test_pmf_degenerate_p(self):
        assert log_binom_pmf(0, 10, 0.0) == 0.0
        assert log_binom_pmf(1, 10, 0.0) == float("-inf")
        assert log_binom_pmf(10, 10, 1.0) == 0.0

    def test_pmf_invalid_p(self):
        with pytest.raises(ValueError):
            log_binom_pmf(1, 10, 1.5)


class TestExactTails:
    @pytest.mark.parametrize("n,p", [(10, 0.3), (100, 0.1), (1343, 0.0375)])
    def test_upper_tail_matches_scipy(self, n, p):
        for x in (0, 1, n // 4, n // 2, n):
            expected = float(binom.sf(x - 1, n, p))
            assert binom_tail_upper(x, n, p) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("n,p", [(10, 0.3), (100, 0.1), (1343, 0.0375)])
    def test_lower_tail_matches_scipy(self, n, p):
        for x in (0, 1, n // 4, n // 2, n):
            expected = float(binom.cdf(x, n, p))
            assert binom_tail_lower(x, n, p) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_paper_table2_f2pool_row_is_extreme(self):
        # x=466 of y=839 c-blocks at theta0=0.1753: p must be ~0.
        p = binom_tail_upper(466, 839, 0.1753)
        assert p < 1e-100

    def test_deep_tail_no_underflow_to_garbage(self):
        p = binom_tail_upper(900, 1000, 0.01)
        assert 0.0 <= p < 1e-300 or p == 0.0

    def test_boundaries(self):
        assert binom_tail_upper(0, 10, 0.5) == 1.0
        assert binom_tail_upper(11, 10, 0.5) == 0.0
        assert binom_tail_lower(-1, 10, 0.5) == 0.0
        assert binom_tail_lower(10, 10, 0.5) == 1.0


class TestNormalApproximation:
    def test_tracks_exact_for_large_n(self):
        # Far-tail normal approximations are only log-scale accurate;
        # compare log p-values, which is what test decisions rest on.
        n, p = 5000, 0.12
        for x in (550, 600, 650, 700):
            exact = binom_tail_upper(x, n, p)
            approx = normal_tail_upper(x, n, p)
            assert math.log(approx) == pytest.approx(math.log(exact), rel=0.15)

    def test_lower_tracks_exact(self):
        n, p = 5000, 0.12
        for x in (500, 550, 600):
            exact = binom_tail_lower(x, n, p)
            approx = normal_tail_lower(x, n, p)
            assert math.log(approx) == pytest.approx(math.log(exact), rel=0.15)

    def test_degenerate_n(self):
        assert normal_tail_upper(0, 0, 0.5) == 1.0


class TestFishersMethod:
    def test_uniform_ps_stay_moderate(self):
        assert 0.3 < fishers_method([0.5, 0.5, 0.5]) < 1.0

    def test_small_ps_combine_smaller(self):
        combined = fishers_method([0.01, 0.01, 0.01])
        assert combined < 0.001

    def test_single_p(self):
        assert fishers_method([0.05]) == pytest.approx(0.05, rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fishers_method([])

    def test_zero_p_clipped(self):
        assert fishers_method([0.0, 0.5]) >= 0.0


class TestPrioritizationTest:
    def test_counts_x_and_y(self):
        miners = ["m"] * 7 + ["other"] * 3
        result = prioritization_test("m", 0.2, miners)
        assert result.x == 7 and result.y == 10
        assert result.observed_share == pytest.approx(0.7)

    def test_acceleration_detected(self):
        miners = ["m"] * 70 + ["other"] * 30
        result = prioritization_test("m", 0.2, miners)
        assert result.accelerates()
        assert not result.decelerates()

    def test_neutral_not_flagged(self):
        miners = ["m"] * 20 + ["other"] * 80
        result = prioritization_test("m", 0.2, miners)
        assert not result.accelerates()
        assert not result.decelerates()

    def test_deceleration_detected(self):
        miners = ["other"] * 100
        result = prioritization_test("m", 0.2, miners)
        assert result.decelerates(alpha=0.001)

    def test_directional_complement(self):
        # P(B >= x) + P(B <= x-1) == 1 exactly.
        miners = ["m"] * 3 + ["other"] * 17
        result = prioritization_test("m", 0.25, miners)
        lower = binom_tail_lower(result.x - 1, result.y, 0.25)
        assert result.p_accelerate + lower == pytest.approx(1.0)

    def test_invalid_theta0(self):
        with pytest.raises(ValueError):
            prioritization_test("m", 0.0, ["m"])

    def test_normal_approximation_mode(self):
        miners = ["m"] * 700 + ["other"] * 300
        exact = prioritization_test("m", 0.2, miners)
        approx = prioritization_test("m", 0.2, miners, use_normal_approximation=True)
        assert math.isclose(
            math.log(max(approx.p_accelerate, 1e-300)),
            math.log(max(exact.p_accelerate, 1e-300)),
            rel_tol=0.2,
        )


class TestWindowedTest:
    def test_combines_windows(self):
        windows = [
            (0.2, ["m"] * 10 + ["o"] * 10),
            (0.3, ["m"] * 12 + ["o"] * 8),
        ]
        combined = windowed_prioritization_test("m", windows)
        assert 0.0 <= combined <= 1.0
        assert combined < 0.01  # both windows over-represent m

    def test_empty_windows_skipped(self):
        windows = [(0.2, []), (0.2, ["m"] * 5)]
        assert windowed_prioritization_test("m", windows) < 1.0

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            windowed_prioritization_test("m", [(0.2, [])])

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            windowed_prioritization_test("m", [(0.2, ["m"])], direction="sideways")


class TestCBlocks:
    def test_unique_heights_counted_once(self):
        block_miners = {0: "a", 1: "b", 2: "a"}
        labels = c_blocks_for(block_miners, [0, 0, 2, None])
        assert labels == ["a", "a"]

    def test_unknown_heights_skipped(self):
        assert c_blocks_for({0: "a"}, [5]) == []
