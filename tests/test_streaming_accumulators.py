"""Unit tests: incremental accumulators fold to the batch quantities.

The full audit-level equivalence lives in
``tests/test_streaming_differential.py``; these tests pin each
accumulator *individually* against the batch function it replaces, so a
divergence localises to one accumulator instead of one giant report
diff.
"""

import numpy as np
import pytest

from repro.chain.attribution import estimate_hash_rates
from repro.chain.blockchain import ChainValidationError
from repro.core.audit import Auditor, StreamingAuditor, stream_blocks
from repro.core.ppe import (
    PpeAccumulator,
    block_ppe,
    chain_ppe,
    sppe,
    summarize_ppe,
)
from repro.core.stattests import PrioritizationAccumulator
from repro.core.violations import (
    ViolationAccumulator,
    analyze_snapshot,
    build_snapshot_view,
)
from tests.oracle import floats_equal, nan_equal


@pytest.fixture(scope="module")
def folded(small_dataset_a):
    """Every accumulator folded over dataset A's chain, in order."""
    ppe_acc = PpeAccumulator()
    vio_acc = ViolationAccumulator()
    prio_acc = PrioritizationAccumulator()
    for height, pool, block in stream_blocks(small_dataset_a):
        ppe_acc.fold(block, pool=pool)
        vio_acc.fold(block)
        prio_acc.fold(height, pool)
    return ppe_acc, vio_acc, prio_acc


class TestPpeAccumulator:
    def test_results_match_per_block_ppe(self, small_dataset_a, folded):
        ppe_acc, _, _ = folded
        batch = [block_ppe(b) for b in small_dataset_a.chain]
        batch = [r for r in batch if r is not None]
        assert ppe_acc.results == batch

    def test_summary_matches_chain_ppe(self, small_dataset_a, folded):
        ppe_acc, _, _ = folded
        batch = chain_ppe(small_dataset_a.chain)
        assert ppe_acc.results == batch
        assert ppe_acc.summary() == summarize_ppe(batch)

    def test_by_pool_matches_batch_auditor(self, small_dataset_a, folded):
        ppe_acc, _, _ = folded
        auditor = Auditor(small_dataset_a)
        pools = sorted(ppe_acc.by_pool)
        assert ppe_acc.by_pool == auditor.ppe_by_pool(pools)

    def test_sppe_matches_batch_sppe(self, small_dataset_a, folded):
        ppe_acc, _, _ = folded
        pool = small_dataset_a.hash_rates()[0].pool
        txids = small_dataset_a.inferred_self_interest_txids_indexed(pool)
        streamed = ppe_acc.sppe(pool, txids)
        batch = sppe(small_dataset_a.blocks_of(pool), txids)
        assert nan_equal(streamed, batch)

    def test_block_count_tracks_folds(self, small_dataset_a, folded):
        ppe_acc, _, _ = folded
        assert ppe_acc.block_count == len(small_dataset_a.chain)


class TestViolationAccumulator:
    def test_commit_heights_cover_every_record(self, small_dataset_a, folded):
        _, vio_acc, _ = folded
        # The accumulator sees every chain tx (a superset of the record
        # join); on the observed side both agree exactly.
        batch = small_dataset_a.commit_heights()
        for txid, height in batch.items():
            assert vio_acc.commit_heights[txid] == height

    def test_cpfp_txids_match_dataset(self, small_dataset_a, folded):
        _, vio_acc, _ = folded
        assert vio_acc.cpfp_txids == set(small_dataset_a.cpfp_txids())

    def test_heights_of_matches_record_heights(self, small_dataset_a, folded):
        _, vio_acc, _ = folded
        committed = [
            txid
            for txid, record in small_dataset_a.tx_records.items()
            if record.commit_height is not None
        ][:25]
        expected = {
            small_dataset_a.tx_records[t].commit_height for t in committed
        }
        assert vio_acc.heights_of(committed) == expected

    def test_snapshot_analysis_matches_batch(self, small_dataset_a, folded):
        _, vio_acc, _ = folded
        rng = np.random.default_rng(30)
        snapshots = small_dataset_a.snapshots.sample(5, rng)
        commit_heights = small_dataset_a.commit_heights()
        cpfp = small_dataset_a.cpfp_txids()
        for snapshot in snapshots:
            streamed = vio_acc.analyze(snapshot, epsilon=0.0)
            batch = analyze_snapshot(
                build_snapshot_view(snapshot, commit_heights, cpfp), 0.0
            )
            assert streamed == batch


class TestPrioritizationAccumulator:
    def test_labels_reproduce_hash_rates(self, small_dataset_a, folded):
        _, _, prio_acc = folded
        assert estimate_hash_rates(prio_acc.labels) == (
            small_dataset_a.hash_rates()
        )

    def test_share_matches_dataset(self, small_dataset_a, folded):
        _, _, prio_acc = folded
        for est in small_dataset_a.hash_rates():
            assert floats_equal(
                prio_acc.share(est.pool),
                small_dataset_a.hash_rate_of(est.pool),
            )

    def test_test_for_matches_batch_auditor(self, small_dataset_a, folded):
        _, vio_acc, prio_acc = folded
        auditor = Auditor(small_dataset_a)
        for est in small_dataset_a.hash_rates()[:4]:
            txids = small_dataset_a.inferred_self_interest_txids_indexed(
                est.pool
            )
            streamed = prio_acc.test_for(
                est.pool, vio_acc.heights_of(txids)
            )
            assert streamed == auditor.prioritization_test_for(
                est.pool, txids
            )


class TestStreamingAuditorFolding:
    def test_heights_advance_one_block_at_a_time(self, small_dataset_a):
        streaming = StreamingAuditor.from_dataset(small_dataset_a)
        assert streaming.applied_height == -1
        for height, pool, block in stream_blocks(small_dataset_a):
            assert streaming.expected_height == height
            streaming.fold_block(block, pool)
            assert streaming.applied_height == height

    def test_out_of_order_fold_rejected(self, small_dataset_a):
        streaming = StreamingAuditor.from_dataset(small_dataset_a)
        feed = list(stream_blocks(small_dataset_a))
        _, _, second = feed[1]
        with pytest.raises(ChainValidationError):
            streaming.fold_block(second, "whoever")

    def test_stream_blocks_is_chain_ordered(self, small_dataset_a):
        feed = list(stream_blocks(small_dataset_a))
        assert [h for h, _, _ in feed] == [
            b.height for b in small_dataset_a.chain
        ]
        for height, pool, _ in feed:
            assert pool == small_dataset_a.block_pools.get(height, "unknown")
