"""Fault injection end to end: both substrates and the degrader agree.

Three ways of producing a degraded dataset must be consistent:

* the vectorised engine with an in-run :class:`FaultSchedule`,
* the evented P2P substrate with the same schedule,
* :func:`degrade_dataset` applied post hoc to a clean run.

Observer-side faults commute with curation, so the engine-faulted run
must match the degraded clean run *exactly* on transaction records,
snapshot timing/contents, and the chain (the size series is a
documented approximation and is compared elsewhere only structurally).
The evented path shares the canonical loss channels, so it censors the
same txid set.  Finally, the audit layer must absorb any of these
datasets without raising.
"""

import pytest

from repro.core.audit import Auditor
from repro.core.stattests import DEFAULT_ALPHA
from repro.datasets.io import dataset_to_dict
from repro.faults import FaultSchedule, OutageWindow, degrade_dataset, spread_downtime
from repro.mining.pool import DATASET_C_POOLS, make_pools
from repro.mining.policies import FeeRatePolicy
from repro.simulation.engine import (
    EngineConfig,
    ObserverConfig,
    SimulationEngine,
    generate_block_schedule,
)
from repro.simulation.evented import EventedConfig, EventedSimulation
from repro.simulation.rng import RngStreams
from repro.simulation.scenarios import dataset_c_scenario
from repro.simulation.workload import (
    DemandModel,
    SizeModel,
    WorkloadConfig,
    WorkloadGenerator,
)

SCALE = 0.04
SEED = 11


@pytest.fixture(scope="module")
def clean_run():
    scenario = dataset_c_scenario(seed=SEED, scale=SCALE)
    return scenario.run().dataset, scenario.engine_config.duration


@pytest.fixture(scope="module")
def fault_schedule(clean_run):
    dataset, duration = clean_run
    observer = dataset.metadata.get("observer", dataset.name)
    return FaultSchedule(
        seed=77,
        tx_loss_rate=0.15,
        downtime=spread_downtime(observer, duration, 0.1, windows=2),
        partitions=(
            OutageWindow(observer, 0.30 * duration, 0.35 * duration),
        ),
    )


@pytest.fixture(scope="module")
def engine_faulted(fault_schedule):
    scenario = dataset_c_scenario(seed=SEED, scale=SCALE, faults=fault_schedule)
    return scenario.run().dataset


@pytest.fixture(scope="module")
def degraded(clean_run, fault_schedule):
    dataset, _ = clean_run
    return degrade_dataset(dataset, fault_schedule)


class TestEngineMatchesDegrader:
    def test_transaction_records_identical(self, engine_faulted, degraded):
        assert (
            dataset_to_dict(engine_faulted)["tx_records"]
            == dataset_to_dict(degraded)["tx_records"]
        )

    def test_snapshots_identical(self, engine_faulted, degraded):
        assert (
            dataset_to_dict(engine_faulted)["snapshots"]
            == dataset_to_dict(degraded)["snapshots"]
        )

    def test_chain_untouched_by_observer_faults(
        self, engine_faulted, degraded, clean_run
    ):
        clean, _ = clean_run
        hashes = [block.block_hash for block in clean.chain]
        assert [b.block_hash for b in engine_faulted.chain] == hashes
        assert [b.block_hash for b in degraded.chain] == hashes

    def test_faults_recorded_in_metadata(
        self, engine_faulted, degraded, fault_schedule
    ):
        assert engine_faulted.metadata["faults"] == fault_schedule.describe()
        assert degraded.metadata["faults"] == fault_schedule.describe()
        assert degraded.metadata["degraded"] is True

    def test_losses_actually_happened(self, engine_faulted, clean_run):
        clean, _ = clean_run
        observed_clean = sum(1 for r in clean.tx_records.values() if r.observed)
        observed = sum(
            1 for r in engine_faulted.tx_records.values() if r.observed
        )
        assert observed < observed_clean


class TestDegraderRefusesChainFaults:
    def test_stale_rate_rejected(self, clean_run):
        dataset, _ = clean_run
        with pytest.raises(ValueError, match="chain-side"):
            degrade_dataset(dataset, FaultSchedule(stale_block_rate=0.1))

    def test_pool_loss_rejected(self, clean_run):
        dataset, _ = clean_run
        with pytest.raises(ValueError, match="chain-side"):
            degrade_dataset(dataset, FaultSchedule(pool_loss_rate=0.1))


class TestStaleBlocksInEngine:
    def test_forced_stale_block_shortens_chain(self, clean_run):
        clean, _ = clean_run
        scenario = dataset_c_scenario(
            seed=SEED,
            scale=SCALE,
            faults=FaultSchedule(stale_block_indexes=(2,)),
        )
        dataset = scenario.run().dataset
        assert len(list(dataset.chain)) == len(list(clean.chain)) - 1
        assert dataset.metadata["orphaned_blocks"] == 1


class TestDegradedAudit:
    def test_audit_never_raises_and_reports_quality(self, degraded):
        report = Auditor(degraded).audit()
        assert report.quality.degraded
        assert report.quality.mempool_coverage < 1.0
        assert report.quality.censored_fraction > 0.0
        assert report.quality.downtime_seconds > 0.0
        assert report.quality.snapshot_gap_count > 0

    def test_audit_survives_total_observer_loss(self, clean_run):
        dataset, duration = clean_run
        observer = dataset.metadata.get("observer", dataset.name)
        schedule = FaultSchedule(
            seed=3,
            tx_loss_rate=1.0,
            downtime=spread_downtime(observer, duration, 0.9),
        )
        report = Auditor(degrade_dataset(dataset, schedule)).audit()
        assert report.quality.mempool_coverage == 0.0
        assert report.quality.censored_fraction == 1.0

    def test_coverage_recorded_on_observed_test(self, degraded):
        auditor = Auditor(degraded)
        txids = degraded.inferred_self_interest_txids("F2Pool")
        result = auditor.observed_prioritization_test_for("F2Pool", txids)
        assert 0.0 < result.coverage < 1.0


class TestVerdictStability:
    def test_verdict_unchanged_at_five_percent_loss(self, clean_run):
        dataset, _ = clean_run
        txids = dataset.inferred_self_interest_txids("F2Pool")
        clean_result = Auditor(dataset).observed_prioritization_test_for(
            "F2Pool", txids
        )
        assert clean_result.p_accelerate < DEFAULT_ALPHA
        for fault_seed in (1000, 1001):
            schedule = FaultSchedule(seed=fault_seed, tx_loss_rate=0.05)
            result = Auditor(
                degrade_dataset(dataset, schedule)
            ).observed_prioritization_test_for("F2Pool", txids)
            assert result.p_accelerate < DEFAULT_ALPHA


# ----------------------------------------------------------------------
# Engine vs evented substrate: both censor the same transactions.
# ----------------------------------------------------------------------
EVENTED_DURATION = 30 * 600.0
#: Transactions broadcast this close to the end are excluded from the
#: agreement check: propagation-timing noise near the horizon is not
#: fault-induced loss.
HORIZON_MARGIN = 1200.0


@pytest.fixture(scope="module")
def shared_plan():
    config = WorkloadConfig(
        duration=EVENTED_DURATION,
        capacity_vsize_per_second=1_000_000 / 600.0,
        demand=DemandModel(base_ratio=0.8),
        sizes=SizeModel(median_vsize=8000.0),
    )
    return WorkloadGenerator(config, RngStreams(2024)).generate()


@pytest.fixture(scope="module")
def shared_schedule():
    from repro.mining.pool import normalize_hash_shares

    return generate_block_schedule(
        EVENTED_DURATION,
        600.0,
        normalize_hash_shares(_fresh_pools()),
        RngStreams(7).stream("mining"),
    )


def _fresh_pools():
    pools = make_pools(DATASET_C_POOLS[:6])
    for pool in pools:
        pool.policy = FeeRatePolicy(package_selection=True)
    return pools


def _early_txids(plan):
    return {
        p.tx.txid
        for p in plan
        if p.broadcast_time <= EVENTED_DURATION - HORIZON_MARGIN
    }


def _unobserved(dataset, txids):
    return {
        txid
        for txid in txids
        if not dataset.tx_records[txid].observed
    }


class TestSubstratesAgreeOnLoss:
    @pytest.fixture(scope="class")
    def loss_schedule(self):
        return FaultSchedule(seed=5, tx_loss_rate=0.3)

    @pytest.fixture(scope="class")
    def expected_lost(self, loss_schedule, shared_plan):
        pairs = [(p.broadcast_time, p.tx.txid) for p in shared_plan]
        return loss_schedule.observer_lost_txids("observer", pairs)

    def test_engine_censors_exactly_the_scheduled_set(
        self, shared_plan, shared_schedule, loss_schedule, expected_lost
    ):
        def run(faults):
            engine = SimulationEngine(
                EngineConfig(
                    duration=EVENTED_DURATION, empty_block_probability=0.0
                ),
                _fresh_pools(),
                [ObserverConfig(name="observer", min_fee_rate=0.0)],
                RngStreams(7),
                schedule=shared_schedule,
                faults=faults,
            )
            return engine.run(shared_plan).dataset

        early = _early_txids(shared_plan)
        clean, faulted = run(None), run(loss_schedule)
        assert _unobserved(clean, early) == set()
        assert _unobserved(faulted, early) == expected_lost & early

    def test_evented_censors_exactly_the_scheduled_set(
        self, shared_plan, shared_schedule, loss_schedule, expected_lost
    ):
        def run(faults):
            simulation = EventedSimulation(
                EventedConfig(duration=EVENTED_DURATION),
                _fresh_pools(),
                RngStreams(7),
                faults=faults,
            )
            return simulation.run(shared_plan, schedule=shared_schedule)

        early = _early_txids(shared_plan)
        clean, faulted = run(None), run(loss_schedule)
        assert _unobserved(clean, early) == set()
        assert _unobserved(faulted, early) == expected_lost & early
