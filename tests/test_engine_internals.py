"""Focused tests for the engine's conflict and eligibility internals."""

import numpy as np
import pytest

from repro.chain.transaction import TransactionBuilder
from repro.mining.pool import MiningPool
from repro.simulation.engine import (
    EngineConfig,
    ObserverConfig,
    SimulationEngine,
)
from repro.simulation.rng import RngStreams
from repro.simulation.workload import PlannedTx


def run_plan(plan, duration=6000.0, seed=5):
    """Run a hand-built plan through a single-pool engine."""
    engine = SimulationEngine(
        EngineConfig(
            duration=duration,
            empty_block_probability=0.0,
            pool_delay_median=0.1,
            pool_delay_sigma=0.1,
            slow_delivery_probability=0.0,
        ),
        [MiningPool(name="Solo", marker="/Solo/", hash_share=1.0)],
        [ObserverConfig(name="obs", min_fee_rate=0.0)],
        RngStreams(seed),
    )
    return engine.run(plan).dataset


class TestReplacementRaces:
    def test_bump_before_commit_wins(self):
        builder = TransactionBuilder("engine-rbf-1")
        original = builder.build("a", 1000, fee=100, vsize=200, nonce=1)
        bump = builder.replacement(original, fee=50_000)
        plan = [
            PlannedTx(broadcast_time=1.0, tx=original),
            PlannedTx(broadcast_time=2.0, tx=bump),
        ]
        dataset = run_plan(plan)
        assert dataset.tx_records[bump.txid].committed
        assert not dataset.tx_records[original.txid].committed

    def test_bump_after_commit_is_dropped(self):
        builder = TransactionBuilder("engine-rbf-2")
        original = builder.build("a", 1000, fee=5000, vsize=200, nonce=1)
        bump = builder.replacement(original, fee=50_000)
        plan = [
            PlannedTx(broadcast_time=1.0, tx=original),
            # The bump arrives long after the original surely committed.
            PlannedTx(broadcast_time=4000.0, tx=bump),
        ]
        dataset = run_plan(plan)
        assert dataset.tx_records[original.txid].committed
        assert not dataset.tx_records[bump.txid].committed

    def test_underpaying_bump_ignored(self):
        builder = TransactionBuilder("engine-rbf-3")
        # Keep the original pending by giving the pool no block before
        # the bump arrives (both early, fee comparison decides).
        original = builder.build("a", 1000, fee=5000, vsize=200, nonce=1)
        weak = builder.replacement(original, fee=5000)  # equal: invalid
        plan = [
            PlannedTx(broadcast_time=1.0, tx=original),
            PlannedTx(broadcast_time=2.0, tx=weak),
        ]
        dataset = run_plan(plan)
        assert dataset.tx_records[original.txid].committed
        assert not dataset.tx_records[weak.txid].committed

    def test_replaced_parents_children_are_orphaned(self):
        builder = TransactionBuilder("engine-rbf-4")
        parent = builder.build("a", 1000, fee=100, vsize=200, nonce=1)
        child = builder.build(
            "b", 500, fee=90_000, vsize=150, extra_parents=[parent.txid], nonce=2
        )
        bump = builder.replacement(parent, fee=70_000)
        plan = [
            PlannedTx(broadcast_time=1.0, tx=parent),
            PlannedTx(broadcast_time=2.0, tx=child),
            PlannedTx(broadcast_time=3.0, tx=bump),
        ]
        dataset = run_plan(plan)
        assert dataset.tx_records[bump.txid].committed
        # The child spent an output of the displaced parent: it must
        # never commit (its input no longer exists).
        assert not dataset.tx_records[child.txid].committed


class TestEligibility:
    def test_child_waits_for_parent_propagation(self):
        # A child broadcast long before its parent reaches the pool must
        # not be committed without (or before) the parent.
        builder = TransactionBuilder("engine-elig")
        parent = builder.build("a", 1000, fee=50_000, vsize=200, nonce=1)
        child = builder.build(
            "b", 500, fee=60_000, vsize=150, extra_parents=[parent.txid], nonce=2
        )
        plan = [
            PlannedTx(broadcast_time=500.0, tx=parent),
            PlannedTx(broadcast_time=1.0, tx=child),  # child first!
        ]
        dataset = run_plan(plan)
        commits = dataset.commit_heights()
        assert parent.txid in commits and child.txid in commits
        parent_pos = (
            commits[parent.txid],
            dataset.tx_records[parent.txid].commit_position,
        )
        child_pos = (
            commits[child.txid],
            dataset.tx_records[child.txid].commit_position,
        )
        assert parent_pos < child_pos

    def test_observer_threshold_blinds_but_does_not_block(self):
        # The observer rejects a low-fee tx, but the pool still mines it.
        builder = TransactionBuilder("engine-thresh")
        cheap = builder.build("a", 1000, fee=0, vsize=200, nonce=1)
        plan = [PlannedTx(broadcast_time=1.0, tx=cheap)]
        engine = SimulationEngine(
            EngineConfig(duration=3000.0, empty_block_probability=0.0),
            [MiningPool(name="Solo", marker="/Solo/", hash_share=1.0)],
            [ObserverConfig(name="strict", min_fee_rate=1.0)],
            RngStreams(3),
        )
        dataset = engine.run(plan).dataset
        record = dataset.tx_records[cheap.txid]
        assert record.committed
        assert not record.observed
