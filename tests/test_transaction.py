"""Unit tests for the transaction data model."""

import pytest

from repro.chain.transaction import (
    CoinbaseTransaction,
    OutPoint,
    Transaction,
    TransactionBuilder,
    TxInput,
    TxOutput,
    coinbase_value,
    dedupe_transactions,
    make_coinbase,
    make_transaction,
    total_fees,
    total_vsize,
)


def simple_tx(fee=500, vsize=250, nonce=0, parent="aa" * 32):
    return make_transaction(
        inputs=[TxInput(OutPoint(parent, 0))],
        outputs=[TxOutput("addr", 10_000)],
        vsize=vsize,
        fee=fee,
        nonce=nonce,
    )


class TestTransaction:
    def test_txid_is_deterministic(self):
        assert simple_tx().txid == simple_tx().txid

    def test_txid_changes_with_nonce(self):
        assert simple_tx(nonce=1).txid != simple_tx(nonce=2).txid

    def test_txid_changes_with_outputs(self):
        a = make_transaction(
            [TxInput(OutPoint("aa" * 32, 0))], [TxOutput("x", 1)], 100, 10
        )
        b = make_transaction(
            [TxInput(OutPoint("aa" * 32, 0))], [TxOutput("y", 1)], 100, 10
        )
        assert a.txid != b.txid

    def test_fee_rate(self):
        assert simple_tx(fee=500, vsize=250).fee_rate == pytest.approx(2.0)

    def test_parent_txids(self):
        parent = "bb" * 32
        assert simple_tx(parent=parent).parent_txids == frozenset({parent})

    def test_negative_fee_rejected(self):
        with pytest.raises(ValueError):
            simple_tx(fee=-1)

    def test_zero_vsize_rejected(self):
        with pytest.raises(ValueError):
            simple_tx(vsize=0)

    def test_negative_output_value_rejected(self):
        with pytest.raises(ValueError):
            TxOutput("addr", -5)

    def test_touches_address(self):
        tx = simple_tx()
        assert tx.touches_address(frozenset({"addr"}))
        assert not tx.touches_address(frozenset({"other"}))

    def test_output_value(self):
        assert simple_tx().output_value == 10_000

    def test_is_coinbase_false_for_normal_tx(self):
        assert not simple_tx().is_coinbase

    def test_hashable_by_txid(self):
        tx = simple_tx()
        assert len({tx, tx}) == 1


class TestCoinbase:
    def test_coinbase_has_no_inputs(self):
        cb = make_coinbase("pool", 50, "/Pool/", height=7)
        assert cb.is_coinbase
        assert cb.inputs == ()

    def test_marker_stored(self):
        cb = make_coinbase("pool", 50, "/F2Pool/", height=1)
        assert cb.marker == "/F2Pool/"

    def test_marker_affects_txid(self):
        a = make_coinbase("pool", 50, "/A/", height=1)
        b = make_coinbase("pool", 50, "/B/", height=1)
        assert a.txid != b.txid

    def test_height_affects_txid(self):
        a = make_coinbase("pool", 50, "/A/", height=1)
        b = make_coinbase("pool", 50, "/A/", height=2)
        assert a.txid != b.txid

    def test_coinbase_with_inputs_rejected(self):
        with pytest.raises(ValueError):
            CoinbaseTransaction(
                inputs=(TxInput(OutPoint("aa" * 32, 0)),),
                outputs=(TxOutput("x", 1),),
                vsize=100,
                fee=0,
            )

    def test_coinbase_value(self):
        assert coinbase_value(625_000_000, 12_345) == 625_012_345

    def test_coinbase_value_rejects_negative(self):
        with pytest.raises(ValueError):
            coinbase_value(-1, 0)


class TestHelpers:
    def test_dedupe_keeps_first(self):
        tx = simple_tx()
        other = simple_tx(nonce=9)
        assert dedupe_transactions([tx, other, tx]) == [tx, other]

    def test_total_fees_and_vsize(self):
        txs = [simple_tx(fee=100, vsize=200, nonce=i) for i in range(3)]
        assert total_fees(txs) == 300
        assert total_vsize(txs) == 600


class TestTransactionBuilder:
    def test_fresh_outpoints_never_collide(self):
        builder = TransactionBuilder("ns")
        a = builder.build("x", 1000, fee=10, vsize=100)
        b = builder.build("x", 1000, fee=10, vsize=100)
        assert a.txid != b.txid
        assert not (a.parent_txids & b.parent_txids)

    def test_extra_parents_recorded(self):
        builder = TransactionBuilder("ns")
        parent = builder.build("x", 1000, fee=10, vsize=100)
        child = builder.build(
            "y", 500, fee=50, vsize=100, extra_parents=[parent.txid]
        )
        assert parent.txid in child.parent_txids

    def test_change_address_adds_output(self):
        builder = TransactionBuilder("ns")
        tx = builder.build("x", 1000, fee=10, vsize=100, change_address="chg")
        assert {o.address for o in tx.outputs} == {"x", "chg"}

    def test_namespaces_are_isolated(self):
        a = TransactionBuilder("one").build("x", 1, fee=1, vsize=100)
        b = TransactionBuilder("two").build("x", 1, fee=1, vsize=100)
        assert a.txid != b.txid
