"""Unit tests for snapshot recording, stores, and size series."""

import numpy as np
import pytest

from repro.mempool.mempool import Mempool
from repro.mempool.snapshots import (
    CONGESTION_BINS,
    MempoolSnapshot,
    SizeSeries,
    SnapshotRecorder,
    SnapshotStore,
    SnapshotTx,
    congestion_bin,
    merge_stores,
)

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("snapshots")


def snap(time, *sizes):
    txs = tuple(
        SnapshotTx(txid=f"tx{i}-{time}", arrival_time=time, fee=100, vsize=size)
        for i, size in enumerate(sizes)
    )
    return MempoolSnapshot(time=time, txs=txs)


class TestCongestionBins:
    def test_bin_edges(self):
        assert congestion_bin(0) == CONGESTION_BINS[0]
        assert congestion_bin(1_000_000) == CONGESTION_BINS[0]
        assert congestion_bin(1_000_001) == CONGESTION_BINS[1]
        assert congestion_bin(2_000_000) == CONGESTION_BINS[1]
        assert congestion_bin(4_000_000) == CONGESTION_BINS[2]
        assert congestion_bin(4_000_001) == CONGESTION_BINS[3]

    def test_snapshot_congested_flag(self):
        assert not snap(0.0, 500_000).is_congested
        assert snap(0.0, 600_000, 600_000).is_congested


class TestRecorder:
    def test_due_respects_interval(self, txf):
        recorder = SnapshotRecorder(interval=15.0)
        assert recorder.due(0.0)
        recorder.capture(Mempool(), 0.0)
        assert not recorder.due(10.0)
        assert recorder.due(15.0)

    def test_capture_reflects_mempool(self, txf):
        pool = Mempool()
        tx = txf.tx(fee=500, vsize=250)
        pool.offer(tx, now=3.0)
        recorder = SnapshotRecorder()
        snapshot = recorder.capture(pool, now=15.0)
        assert snapshot.tx_count == 1
        assert snapshot.txs[0].txid == tx.txid
        assert snapshot.txs[0].arrival_time == 3.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SnapshotRecorder(interval=0.0)


class TestStore:
    def test_store_sorted_and_indexed(self):
        store = SnapshotStore([snap(30.0), snap(0.0), snap(15.0)])
        assert store.times == [0.0, 15.0, 30.0]
        assert store[0].time == 0.0

    def test_at_or_before(self):
        store = SnapshotStore([snap(0.0), snap(15.0)])
        assert store.at_or_before(10.0).time == 0.0
        assert store.at_or_before(15.0).time == 15.0
        assert store.at_or_before(-1.0) is None

    def test_congested_fraction(self):
        store = SnapshotStore(
            [snap(0.0, 2_000_000), snap(15.0, 100), snap(30.0, 3_000_000)]
        )
        assert store.congested_fraction() == pytest.approx(2 / 3)

    def test_sample_without_replacement(self):
        store = SnapshotStore([snap(float(t)) for t in range(10)])
        sampled = store.sample(4, np.random.default_rng(1))
        assert len(sampled) == 4
        assert len({s.time for s in sampled}) == 4

    def test_sample_more_than_available(self):
        store = SnapshotStore([snap(0.0)])
        assert len(store.sample(10, np.random.default_rng(1))) == 1

    def test_first_seen_uses_snapshot_time(self):
        early = MempoolSnapshot(
            time=0.0, txs=(SnapshotTx("t", 0.5, 100, 100),)
        )
        late = MempoolSnapshot(
            time=15.0, txs=(SnapshotTx("t", 0.5, 100, 100),)
        )
        store = SnapshotStore([early, late])
        # Observer-visibility semantics: the earliest *snapshot* the tx
        # appeared in, not its mempool arrival time.
        assert store.first_seen() == {"t": 0.0}

    def test_first_seen_when_arrival_and_snapshot_differ(self):
        # Arrives at t=3.1, between snapshots; only becomes auditor-visible
        # at the t=15 snapshot.  A tx present from the first snapshot keeps
        # that snapshot's time.
        s0 = MempoolSnapshot(time=0.0, txs=(SnapshotTx("a", 0.0, 100, 100),))
        s1 = MempoolSnapshot(
            time=15.0,
            txs=(
                SnapshotTx("a", 0.0, 100, 100),
                SnapshotTx("b", 3.1, 200, 100),
            ),
        )
        store = SnapshotStore([s0, s1])
        first = store.first_seen()
        assert first["b"] == 15.0  # not the 3.1 arrival time
        assert first["a"] == 0.0

    def test_merge_stores(self):
        merged = merge_stores(
            [SnapshotStore([snap(0.0)]), SnapshotStore([snap(15.0)])]
        )
        assert len(merged) == 2


class TestSizeSeries:
    def test_basic_queries(self):
        series = SizeSeries([0.0, 15.0, 30.0], [100, 2_000_000, 500])
        assert series.sizes() == [100, 2_000_000, 500]
        assert series.size_at_or_before(20.0) == 2_000_000
        assert series.size_at_or_before(-5.0) is None
        assert series.congested_fraction() == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeSeries([0.0, 1.0], [1])
        with pytest.raises(ValueError):
            SizeSeries([1.0, 0.0], [1, 2])
        with pytest.raises(ValueError):
            SizeSeries([0.0], [1], tx_counts=[1, 2])

    def test_tx_counts_optional(self):
        assert SizeSeries([0.0], [1]).tx_counts() is None
        assert SizeSeries([0.0], [1], tx_counts=[5]).tx_counts() == [5]
