"""Unit tests for the mempool: admission, removal, ordering, expiry."""

import pytest

from repro.mempool.mempool import Mempool, RejectionReason

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("mempool")


class TestAdmission:
    def test_accepts_above_threshold(self, txf):
        pool = Mempool(min_fee_rate=1.0)
        result = pool.offer(txf.tx(fee=500, vsize=250), now=0.0)
        assert result.accepted
        assert len(pool) == 1

    def test_rejects_below_threshold(self, txf):
        pool = Mempool(min_fee_rate=1.0)
        result = pool.offer(txf.tx(fee=100, vsize=250), now=0.0)
        assert not result.accepted
        assert result.reason == RejectionReason.BELOW_MIN_FEE_RATE
        assert len(pool) == 0

    def test_zero_threshold_accepts_zero_fee(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        assert pool.offer(txf.tx(fee=0), now=0.0).accepted

    def test_duplicate_rejected(self, txf):
        pool = Mempool()
        tx = txf.tx()
        assert pool.offer(tx, now=0.0).accepted
        result = pool.offer(tx, now=1.0)
        assert not result.accepted
        assert result.reason == RejectionReason.ALREADY_PRESENT

    def test_rejection_counts(self, txf):
        pool = Mempool(min_fee_rate=1.0)
        pool.offer(txf.tx(fee=0), now=0.0)
        pool.offer(txf.tx(fee=0), now=0.0)
        assert pool.rejection_counts[RejectionReason.BELOW_MIN_FEE_RATE] == 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            Mempool(min_fee_rate=-1.0)


class TestRemoval:
    def test_remove_returns_entry(self, txf):
        pool = Mempool()
        tx = txf.tx()
        pool.offer(tx, now=0.0)
        entry = pool.remove(tx.txid)
        assert entry is not None and entry.txid == tx.txid
        assert tx.txid not in pool

    def test_remove_absent_is_noop(self, txf):
        assert Mempool().remove("nope") is None

    def test_remove_confirmed_counts(self, txf):
        pool = Mempool()
        txs = [txf.tx(nonce=i) for i in range(3)]
        for tx in txs:
            pool.offer(tx, now=0.0)
        removed = pool.remove_confirmed([txs[0].txid, txs[1].txid, "missing"])
        assert removed == 2
        assert len(pool) == 1


class TestAccounting:
    def test_total_vsize_tracks_membership(self, txf):
        pool = Mempool()
        a = txf.tx(vsize=300)
        b = txf.tx(vsize=700)
        pool.offer(a, now=0.0)
        pool.offer(b, now=0.0)
        assert pool.total_vsize == 1000
        pool.remove(a.txid)
        assert pool.total_vsize == 700

    def test_total_fees_tracks_membership(self, txf):
        pool = Mempool()
        pool.offer(txf.tx(fee=400), now=0.0)
        pool.offer(txf.tx(fee=600), now=0.0)
        assert pool.total_fees == 1000

    def test_arrival_time_recorded(self, txf):
        pool = Mempool()
        tx = txf.tx()
        pool.offer(tx, now=42.5)
        assert pool.arrival_time(tx.txid) == 42.5
        assert pool.arrival_time("missing") is None


class TestOrdering:
    def test_entries_by_fee_rate_descending(self, txf):
        pool = Mempool()
        cheap = txf.tx(fee=100, vsize=100)
        rich = txf.tx(fee=900, vsize=100)
        mid = txf.tx(fee=500, vsize=100)
        for tx in (cheap, rich, mid):
            pool.offer(tx, now=0.0)
        ordered = [e.txid for e in pool.entries_by_fee_rate()]
        assert ordered == [rich.txid, mid.txid, cheap.txid]

    def test_fee_rate_ties_break_by_arrival(self, txf):
        pool = Mempool()
        first = txf.tx(fee=100, vsize=100, nonce=1)
        second = txf.tx(fee=100, vsize=100, nonce=2)
        pool.offer(first, now=0.0)
        pool.offer(second, now=1.0)
        ordered = [e.txid for e in pool.entries_by_fee_rate()]
        assert ordered == [first.txid, second.txid]

    def test_iter_best_skips_removed(self, txf):
        pool = Mempool()
        rich = txf.tx(fee=900, vsize=100)
        poor = txf.tx(fee=100, vsize=100)
        pool.offer(rich, now=0.0)
        pool.offer(poor, now=0.0)
        pool.remove(rich.txid)
        assert [e.txid for e in pool.iter_best()] == [poor.txid]


class TestExpiry:
    def test_expire_drops_old_entries(self, txf):
        pool = Mempool(expiry_seconds=100.0)
        old = txf.tx(nonce=1)
        fresh = txf.tx(nonce=2)
        pool.offer(old, now=0.0)
        pool.offer(fresh, now=150.0)
        stale = pool.expire(now=200.0)
        assert [e.txid for e in stale] == [old.txid]
        assert fresh.txid in pool

    def test_filter(self, txf):
        pool = Mempool()
        pool.offer(txf.tx(fee=10_000, vsize=100), now=0.0)
        pool.offer(txf.tx(fee=100, vsize=100), now=0.0)
        rich = pool.filter(lambda e: e.fee_rate > 50)
        assert len(rich) == 1
