"""Property-based tests: violation counting and serialization round trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.blockchain import Blockchain
from repro.core.violations import analyze_snapshot, count_violations, SnapshotView
from repro.datasets.dataset import Dataset
from repro.datasets.io import dataset_from_dict, dataset_to_dict
from repro.datasets.records import TxRecord
from repro.mempool.snapshots import SnapshotStore

from conftest import TxFactory, make_test_block


# ----------------------------------------------------------------------
# Violation counting
# ----------------------------------------------------------------------
def random_view(seed, count):
    rng = np.random.default_rng(seed)
    return SnapshotView(
        time=0.0,
        txids=tuple(f"t{i}" for i in range(count)),
        arrival_times=rng.uniform(0, 1000, count),
        fee_rates=rng.uniform(1, 500, count),
        commit_heights=rng.integers(0, 50, count),
    )


@settings(max_examples=40)
@given(seed=st.integers(0, 10_000), count=st.integers(0, 80))
def test_violating_bounded_by_eligible_bounded_by_total(seed, count):
    view = random_view(seed, count)
    stats = analyze_snapshot(view)
    assert 0 <= stats.violating_pairs <= stats.eligible_pairs
    # Eligible pairs are ordered one way only, so at most C(n, 2).
    assert stats.eligible_pairs <= stats.total_pairs


@settings(max_examples=30)
@given(seed=st.integers(0, 10_000), count=st.integers(0, 60))
def test_epsilon_monotonicity(seed, count):
    view = random_view(seed, count)
    previous = None
    for epsilon in (0.0, 1.0, 10.0, 100.0, 1000.0):
        stats = analyze_snapshot(view, epsilon)
        if previous is not None:
            assert stats.violating_pairs <= previous.violating_pairs
            assert stats.eligible_pairs <= previous.eligible_pairs
        previous = stats


@settings(max_examples=30)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 60))
def test_norm_conformant_commits_have_no_violations(seed, count):
    # If commit height strictly follows fee-rate (richer first), no pair
    # can violate.
    rng = np.random.default_rng(seed)
    rates = rng.uniform(1, 500, count)
    order = np.argsort(-rates)
    heights = np.empty(count, dtype=np.int64)
    heights[order] = np.arange(count)
    eligible, violating = count_violations(
        rng.uniform(0, 100, count), rates, heights
    )
    assert violating == 0


# ----------------------------------------------------------------------
# Serialization round trips over randomly generated datasets
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), blocks=st.integers(1, 5))
def test_random_dataset_round_trip(seed, blocks):
    rng = np.random.default_rng(seed)
    txf = TxFactory(f"prop-io-{seed}")
    chain = Blockchain()
    records = {}
    for height in range(blocks):
        txs = [
            txf.tx(fee=int(rng.integers(1, 10_000)), vsize=int(rng.integers(100, 500)))
            for _ in range(int(rng.integers(0, 6)))
        ]
        block = make_test_block(
            txs, height=height, prev_hash=chain.tip_hash, timestamp=float(height)
        )
        chain.append(block)
        for position, tx in enumerate(txs):
            records[tx.txid] = TxRecord(
                txid=tx.txid,
                broadcast_time=float(rng.uniform(0, height + 1)),
                observer_arrival=None if rng.random() < 0.3 else float(height),
                fee=tx.fee,
                vsize=tx.vsize,
                commit_height=height,
                commit_position=position,
                labels=frozenset({"scam"}) if rng.random() < 0.2 else frozenset(),
            )
    dataset = Dataset(
        name=f"prop-{seed}",
        chain=chain,
        snapshots=SnapshotStore([]),
        tx_records=records,
        block_pools={h: f"pool{h % 3}" for h in range(blocks)},
    )
    restored = dataset_from_dict(dataset_to_dict(dataset))
    assert restored.chain.tip_hash == dataset.chain.tip_hash
    assert restored.tx_records == dataset.tx_records
    assert restored.block_pools == dataset.block_pools
    assert restored.summary() == dataset.summary()
