"""Unit tests for RNG streams, addresses, and the analysis helpers."""

import numpy as np
import pytest

from repro.analysis.cdf import Ecdf, dominates, ecdf, quantile_table
from repro.analysis.tables import format_cell, render_kv, render_table
from repro.chain.address import AddressFactory, derive_address
from repro.simulation.rng import RngStreams, derive_seed


class TestRngStreams:
    def test_streams_independent(self):
        streams = RngStreams(1)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_same_seed_same_draws(self):
        a = RngStreams(7).stream("s").random(4)
        b = RngStreams(7).stream("s").random(4)
        assert np.allclose(a, b)

    def test_fresh_not_cached(self):
        streams = RngStreams(1)
        assert streams.fresh("x") is not streams.fresh("x")
        assert np.allclose(streams.fresh("x").random(3), streams.fresh("x").random(3))

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_consumer_isolation(self):
        # Drawing extra values from one stream must not shift another.
        streams1 = RngStreams(5)
        streams1.stream("noise").random(100)
        value1 = streams1.stream("signal").random()
        streams2 = RngStreams(5)
        value2 = streams2.stream("signal").random()
        assert value1 == value2


class TestAddresses:
    def test_derive_deterministic(self):
        assert derive_address("seed") == derive_address("seed")
        assert derive_address("a") != derive_address("b")

    def test_p2pkh_shape(self):
        address = derive_address("x")
        assert address.startswith("1")
        assert 20 <= len(address) <= 36

    def test_factory_unique(self):
        factory = AddressFactory("ns")
        batch = factory.batch(50)
        assert len(set(batch)) == 50

    def test_factory_namespaced(self):
        a = AddressFactory("one").next()
        b = AddressFactory("two").next()
        assert a != b

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            AddressFactory("ns").batch(-1)


class TestEcdf:
    def test_probabilities_monotone(self):
        cdf = ecdf([3.0, 1.0, 2.0])
        assert cdf.values.tolist() == [1.0, 2.0, 3.0]
        assert cdf.probabilities.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_at(self):
        cdf = ecdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.5) == pytest.approx(0.5)
        assert cdf.at(0.0) == 0.0
        assert cdf.at(10.0) == 1.0

    def test_quantile(self):
        cdf = ecdf(list(range(101)))
        assert cdf.quantile(0.5) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty(self):
        cdf = Ecdf.from_values([])
        assert cdf.count == 0
        assert cdf.at(1.0) != cdf.at(1.0) or cdf.at(1.0) != cdf.at(1.0)  # NaN

    def test_sample_points(self):
        cdf = ecdf(list(range(100)))
        points = cdf.sample_points(5)
        assert len(points) == 5
        assert points[0][0] == 0.0 and points[-1][1] == 1.0

    def test_quantile_table(self):
        table = quantile_table({"a": [1, 2, 3], "b": []}, quantiles=(0.5,))
        assert table["a"] == [2.0]
        assert table["b"][0] != table["b"][0]  # NaN

    def test_dominates(self):
        assert dominates([1, 2, 3], [4, 5, 6])
        assert not dominates([4, 5, 6], [1, 2, 3])
        assert not dominates([], [1])


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(float("nan")) == "-"
        assert format_cell(0.0) == "0"
        assert "e" in format_cell(1.5e-9)
        assert format_cell("text") == "text"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 44]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_render_table_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_kv(self):
        out = render_kv([("key", 1), ("longer-key", 2.5)])
        assert "key" in out and "longer-key" in out
