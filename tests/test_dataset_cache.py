"""Tests for the content-addressed persistent dataset cache."""

import threading
import time

import pytest

from repro.datasets.builder import (
    build_dataset_a,
    clear_memory_cache,
    disk_cache_key,
)
from repro.datasets.cache import CacheKey, DatasetCache
from repro.datasets.columnar import COLUMNAR_FORMAT_VERSION, columnar_sidecar
from repro.datasets.io import FORMAT_VERSION, dataset_to_dict, save_dataset
from repro.simulation.scenarios import dataset_a_scenario

from conftest import TxFactory
from test_records_dataset import build_small_dataset


@pytest.fixture
def txf():
    return TxFactory("cache")


@pytest.fixture
def small(txf):
    dataset, *_ = build_small_dataset(txf)
    return dataset


KEY = CacheKey(builder="unit", scale=0.5, seed=7)


class TestCacheKey:
    def test_digest_is_stable(self):
        assert KEY.digest() == CacheKey("unit", 0.5, 7).digest()

    def test_every_component_changes_the_address(self):
        digests = {
            KEY.digest(),
            CacheKey("other", 0.5, 7).digest(),
            CacheKey("unit", 0.25, 7).digest(),
            CacheKey("unit", 0.5, 8).digest(),
            CacheKey("unit", 0.5, 7, schema_version=FORMAT_VERSION + 1).digest(),
            CacheKey(
                "unit", 0.5, 7, columnar_version=COLUMNAR_FORMAT_VERSION + 1
            ).digest(),
        }
        assert len(digests) == 6

    def test_filename_readable_and_addressed(self):
        name = CacheKey("dataset-C", 0.15, 2020_01_01).filename()
        assert name.startswith("dataset-C-scale0.15-seed20200101-v")
        assert name.endswith(".json.gz")

    def test_filename_sanitises_builder(self):
        name = CacheKey("ext censorship/c", 1.0, 1).filename()
        assert "/" not in name and " " not in name

    def test_scenario_key_components(self):
        scenario = dataset_a_scenario(scale=0.25)
        key = disk_cache_key(scenario)
        assert key.builder == "dataset-A"
        assert key.scale == 0.25
        assert key.seed == scenario.seed
        assert key.schema_version == FORMAT_VERSION


class TestGetOrBuild:
    def test_cold_build_then_warm_load_round_trips(self, tmp_path, small):
        cache = DatasetCache(tmp_path)
        built = cache.get_or_build(KEY, lambda: small)
        assert built is small
        assert cache.stats.builds == 1 and cache.stats.misses == 1

        calls = []
        loaded = cache.get_or_build(KEY, lambda: calls.append(1) or small)
        assert not calls  # warm: the builder must not run
        assert cache.stats.hits == 1
        # The loaded dataset is semantically the built one.
        assert dataset_to_dict(loaded) == dataset_to_dict(small)

    def test_keys_do_not_collide(self, tmp_path, small):
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        other = CacheKey("unit", 0.5, 8)
        calls = []
        cache.get_or_build(other, lambda: calls.append(1) or small)
        assert calls  # different seed: a distinct entry is built

    def test_corrupt_entry_is_evicted_and_rebuilt(self, tmp_path, small):
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        path = cache.path_for(KEY)
        # Both files of the entry torn: the whole entry is a miss.
        path.write_bytes(b"not gzip at all")
        columnar_sidecar(path).write_bytes(b"not an npz either")
        rebuilt = cache.get_or_build(KEY, lambda: small)
        assert rebuilt is small
        assert cache.stats.evictions == 2  # sidecar, then interchange
        assert cache.stats.builds == 2

    def test_corrupt_gzip_is_masked_by_healthy_sidecar(self, tmp_path, small):
        """Loads prefer the sidecar, so a torn interchange file still hits."""
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        cache.path_for(KEY).write_bytes(b"torn mid-write")
        loaded = cache.get_or_build(KEY, lambda: pytest.fail("rebuilt"))
        assert dataset_to_dict(loaded) == dataset_to_dict(small)
        assert cache.stats.hits == 1
        assert cache.stats.evictions == 0

    def test_corrupt_sidecar_heals_from_interchange(self, tmp_path, small):
        """A torn sidecar is evicted, served from gzip, and re-written."""
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        sidecar = columnar_sidecar(cache.path_for(KEY))
        assert sidecar.exists()
        sidecar.write_bytes(b"\x00" * 32)
        loaded = cache.get_or_build(KEY, lambda: pytest.fail("rebuilt"))
        assert dataset_to_dict(loaded) == dataset_to_dict(small)
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 1
        assert sidecar.exists()  # healed for the next load
        from repro.datasets.columnar import load_columnar

        healed = load_columnar(sidecar)
        assert dataset_to_dict(healed) == dataset_to_dict(small)

    def test_killed_writer_mid_sidecar_checkpoint_never_crashes(
        self, tmp_path, small
    ):
        """A writer killed mid-sidecar leaves a truncated npz behind.

        The next reader must treat the torn sidecar as corruption (not
        crash), evict it, and serve — then re-heal — from the gzip
        completion marker.  Every truncation point is exercised.
        """
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        sidecar = columnar_sidecar(cache.path_for(KEY))
        pristine = sidecar.read_bytes()
        for cut in (1, 64, len(pristine) // 2, len(pristine) - 7):
            sidecar.write_bytes(pristine[:cut])
            loaded = cache.get_or_build(KEY, lambda: pytest.fail("rebuilt"))
            assert dataset_to_dict(loaded) == dataset_to_dict(small)
            assert sidecar.read_bytes() == pristine  # healed byte-identically
        assert cache.stats.evictions == 4
        assert cache.stats.builds == 1

    def test_missing_sidecar_is_rehealed_on_load(self, tmp_path, small):
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        sidecar = columnar_sidecar(cache.path_for(KEY))
        sidecar.unlink()
        loaded = cache.get_or_build(KEY, lambda: pytest.fail("rebuilt"))
        assert dataset_to_dict(loaded) == dataset_to_dict(small)
        assert sidecar.exists()
        assert cache.stats.evictions == 0  # absence is not corruption

    def test_orphan_sidecar_without_completion_marker_is_a_miss(
        self, tmp_path, small
    ):
        """No gzip artifact -> the entry does not exist, sidecar or not."""
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        cache.path_for(KEY).unlink()  # marker gone, sidecar orphaned
        calls = []
        cache.get_or_build(KEY, lambda: calls.append(1) or small)
        assert calls  # rebuilt: an unmarked sidecar is never trusted

    def test_columnar_version_bump_misses_the_cache(self, tmp_path, small):
        """Entries written under another columnar format never alias."""
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        bumped = CacheKey(
            "unit",
            0.5,
            7,
            columnar_version=COLUMNAR_FORMAT_VERSION + 1,
        )
        assert bumped.digest() != KEY.digest()
        assert bumped.filename() != KEY.filename()
        assert cache.load(bumped) is None  # miss, not a stale sidecar hit
        calls = []
        cache.get_or_build(bumped, lambda: calls.append(1) or small)
        assert calls  # the bumped key built its own entry

    def test_clear_removes_entries(self, tmp_path, small):
        cache = DatasetCache(tmp_path)
        cache.get_or_build(KEY, lambda: small)
        assert cache.clear() == 2  # interchange gzip + columnar sidecar
        assert cache.load(KEY) is None

    def test_load_and_store_direct(self, tmp_path, small):
        cache = DatasetCache(tmp_path)
        assert cache.load(KEY) is None
        cache.store(KEY, small)
        assert cache.load(KEY) is not None


class TestLockProtocol:
    def test_waiter_loads_first_builders_artifact(self, tmp_path, small):
        cache = DatasetCache(tmp_path, poll_interval=0.01)
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("someone-else")

        results = []

        def wait_side():
            results.append(
                cache.get_or_build(KEY, lambda: pytest.fail("waiter built"))
            )

        thread = threading.Thread(target=wait_side)
        thread.start()
        time.sleep(0.05)  # the waiter is now polling on the lock
        save_dataset(small, path)  # the "other process" finishes its build
        lock.unlink()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert results and results[0].name == small.name
        assert cache.stats.lock_waits == 1

    def test_waiter_takes_over_when_builder_dies(self, tmp_path, small):
        cache = DatasetCache(tmp_path, poll_interval=0.01)
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("dead-builder")

        results = []

        def wait_side():
            results.append(cache.get_or_build(KEY, lambda: small))

        thread = threading.Thread(target=wait_side)
        thread.start()
        time.sleep(0.05)
        lock.unlink()  # builder vanished without an artifact
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert results and results[0] is small
        assert cache.stats.builds == 1

    def test_timeout_falls_back_to_local_build(self, tmp_path, small):
        cache = DatasetCache(tmp_path, lock_timeout=0.1, poll_interval=0.01)
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("stuck-forever")
        built = cache.get_or_build(KEY, lambda: small)
        assert built is small
        assert cache.stats.builds == 1
        lock.unlink()

    def test_stale_lock_from_crashed_run_does_not_block_warm_hits(
        self, tmp_path, small
    ):
        """A leftover lock must never force a rebuild once the artifact exists.

        The local-build fallback deliberately leaves the foreign lock in
        place (it is not ours to remove); the artifact check runs before
        the lock protocol, so every later call is a plain hit.
        """
        cache = DatasetCache(tmp_path, lock_timeout=0.1, poll_interval=0.01)
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("crashed-run")
        cache.get_or_build(KEY, lambda: small)
        assert lock.exists()  # the stale lock survives the fallback build

        calls = []
        again = cache.get_or_build(KEY, lambda: calls.append(1) or small)
        assert not calls  # warm: loaded straight from the artifact
        assert cache.stats.hits == 1
        assert dataset_to_dict(again) == dataset_to_dict(small)
        assert cache.clear() == 3  # artifact + sidecar + stale lock swept

    def test_reelection_builds_once_and_cleans_its_own_lock(
        self, tmp_path, small
    ):
        """Lock vanishing without an artifact re-elects the waiter.

        The waiter must win the lock itself (not fall through to the
        timeout path), build exactly once, and remove *its* lock when
        done, leaving the directory clean.
        """
        cache = DatasetCache(tmp_path, lock_timeout=30.0, poll_interval=0.01)
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("doomed-builder")

        built = []

        def wait_side():
            built.append(cache.get_or_build(KEY, lambda: small))

        thread = threading.Thread(target=wait_side)
        thread.start()
        time.sleep(0.05)  # waiter is polling on the foreign lock
        lock.unlink()  # builder died: no artifact, no lock
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert built and built[0] is small
        assert cache.stats.builds == 1
        assert cache.stats.lock_waits == 0  # it built, it did not wait
        assert not lock.exists()  # re-elected winner removed its lock
        assert path.exists()

    def test_winner_rechecks_artifact_after_acquiring_lock(
        self, tmp_path, small, monkeypatch
    ):
        """The artifact may land between the miss and winning the lock.

        Simulated by dropping the finished artifact from inside the lock
        acquisition itself: the winner's re-check must load it instead
        of rebuilding, and still release the lock.
        """
        import os as os_module

        from repro.datasets import cache as cache_module

        cache = DatasetCache(tmp_path)
        path = cache.path_for(KEY)
        real_open = os_module.open

        def racing_open(target, flags, *args, **kwargs):
            if str(target).endswith(".lock"):
                save_dataset(small, path)  # the other process just finished
            return real_open(target, flags, *args, **kwargs)

        monkeypatch.setattr(cache_module.os, "open", racing_open)
        loaded = cache.get_or_build(
            KEY, lambda: pytest.fail("winner rebuilt despite fresh artifact")
        )
        assert dataset_to_dict(loaded) == dataset_to_dict(small)
        assert cache.stats.builds == 0
        assert cache.stats.hits == 1
        lock = path.with_name(path.name + ".lock")
        assert not lock.exists()  # released even on the re-check path


class TestStaleLockReclamation:
    """Locks naming a *provably dead* PID are reclaimed after a grace.

    Everything ambiguous — live PIDs, foreign text, unreadable locks —
    is left alone; those paths stay on the wait/timeout protocol the
    tests above pin down.
    """

    @staticmethod
    def _dead_pid() -> int:
        """A PID that belonged to a real process and is now free."""
        import subprocess
        import sys

        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        return probe.pid

    def test_dead_pid_lock_reclaimed_within_grace(self, tmp_path, small):
        cache = DatasetCache(
            tmp_path,
            lock_timeout=30.0,
            poll_interval=0.01,
            stale_lock_grace=0.05,
        )
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text(str(self._dead_pid()))

        start = time.monotonic()
        built = cache.get_or_build(KEY, lambda: small)
        elapsed = time.monotonic() - start

        assert built is small
        assert cache.stats.builds == 1
        assert cache.stats.stale_reclaims == 1
        # Far below the 30s lock timeout: the crashed builder cost one
        # bounded grace period, not the whole wait.
        assert elapsed < 5.0
        assert not lock.exists()  # re-elected builder cleaned up
        assert path.exists()

    def test_live_pid_lock_is_never_reclaimed(self, tmp_path, small):
        import os as os_module

        cache = DatasetCache(
            tmp_path,
            lock_timeout=0.3,
            poll_interval=0.01,
            stale_lock_grace=0.01,
        )
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text(str(os_module.getpid()))  # us: definitely alive

        built = cache.get_or_build(KEY, lambda: small)
        assert built is small  # via the timeout fallback, not reclaim
        assert cache.stats.stale_reclaims == 0
        assert lock.exists()  # a live holder's lock is not ours to take
        lock.unlink()

    def test_non_numeric_lock_is_never_reclaimed(self, tmp_path, small):
        cache = DatasetCache(
            tmp_path,
            lock_timeout=0.3,
            poll_interval=0.01,
            stale_lock_grace=0.01,
        )
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("some-foreign-writer")

        built = cache.get_or_build(KEY, lambda: small)
        assert built is small
        assert cache.stats.stale_reclaims == 0
        assert lock.exists()
        lock.unlink()

    def test_reclaim_prefers_artifact_over_rebuild(self, tmp_path, small):
        """If the dead builder *did* finish, the waiter loads, not builds."""
        cache = DatasetCache(
            tmp_path, poll_interval=0.01, stale_lock_grace=0.05
        )
        path = cache.path_for(KEY)
        lock = path.with_name(path.name + ".lock")
        tmp_path.mkdir(exist_ok=True)
        save_dataset(small, path)
        # Artifact present but a dead lock remains: the pre-lock check
        # hits the artifact without ever touching the lock protocol.
        lock.write_text(str(self._dead_pid()))
        calls = []
        loaded = cache.get_or_build(KEY, lambda: calls.append(1) or small)
        assert not calls
        assert dataset_to_dict(loaded) == dataset_to_dict(small)

    def test_dead_holder_detector_rules(self, tmp_path):
        lock = tmp_path / "probe.lock"
        lock.write_text(str(self._dead_pid()))
        assert DatasetCache._lock_holder_dead(lock)
        import os as os_module

        lock.write_text(str(os_module.getpid()))
        assert not DatasetCache._lock_holder_dead(lock)
        lock.write_text("not-a-pid")
        assert not DatasetCache._lock_holder_dead(lock)
        lock.write_text("-5")
        assert not DatasetCache._lock_holder_dead(lock)
        lock.write_text("")
        assert not DatasetCache._lock_holder_dead(lock)
        lock.unlink()
        assert not DatasetCache._lock_holder_dead(lock)


class TestBuilderIntegration:
    def test_build_dataset_a_populates_and_reuses_cache(self, tmp_path):
        clear_memory_cache()
        cache = DatasetCache(tmp_path)
        first = build_dataset_a(scale=0.04, cache=cache)
        assert cache.stats.builds == 1
        clear_memory_cache()
        second = build_dataset_a(scale=0.04, cache=cache)
        assert cache.stats.hits == 1
        assert dataset_to_dict(first) == dataset_to_dict(second)
        clear_memory_cache()
