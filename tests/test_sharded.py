"""Tests for the generic shard executor and its consumers.

``run_sharded`` is the fan-out primitive under sharded scenario cells
and dataset builds: results return in cell order, failures are isolated
per shard, and obs deltas from pool workers merge at join.  The
consumers pinned here: the adversary detection-matrix sweep (identical
matrix for any ``jobs``) and the ``bench --suite datasets`` grid.
"""

import pytest

from repro import obs
from repro.analysis.runner import (
    ShardOutcome,
    run_datasets_bench,
    run_sharded,
)


# ----------------------------------------------------------------------
# Module-level workers (they cross the process boundary by reference)
# ----------------------------------------------------------------------
def _square(cell):
    return cell * cell


def _fail_on_odd(cell):
    if cell % 2 == 1:
        raise ValueError(f"odd cell {cell}")
    return cell


def _count_and_echo(cell):
    obs.counter("test.sharded.cells")
    obs.counter(f"test.sharded.cell_{cell}")
    return cell


class TestRunSharded:
    def test_sequential_preserves_cell_order(self):
        outcomes = run_sharded([3, 1, 2], _square, jobs=1)
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)

    def test_pool_preserves_cell_order(self):
        outcomes = run_sharded(list(range(8)), _square, jobs=4)
        assert [o.value for o in outcomes] == [n * n for n in range(8)]
        assert [o.index for o in outcomes] == list(range(8))

    def test_pool_matches_sequential(self):
        cells = list(range(6))
        sequential = run_sharded(cells, _square, jobs=1)
        pooled = run_sharded(cells, _square, jobs=3)
        assert [o.value for o in sequential] == [o.value for o in pooled]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_failures_are_isolated_per_shard(self, jobs):
        outcomes = run_sharded([0, 1, 2, 3], _fail_on_odd, jobs=jobs)
        assert [o.ok for o in outcomes] == [True, False, True, False]
        assert outcomes[1].value is None
        assert "odd cell 1" in outcomes[1].error
        assert outcomes[2].value == 2  # later shards still ran

    def test_failed_shard_counts_in_obs(self):
        with obs.tracing(reset=True):
            run_sharded([1], _fail_on_odd, jobs=1)
            counters = obs.snapshot()["counters"]
        assert counters.get("runner.shards.raised") == 1

    def test_single_cell_short_circuits_the_pool(self):
        # One cell runs in-process even with jobs>1 (no pool overhead).
        with obs.tracing(reset=True):
            outcomes = run_sharded([5], _count_and_echo, jobs=4)
            counters = obs.snapshot()["counters"]
        assert outcomes[0].value == 5
        # In-process shards record straight into the live registry;
        # there is no delta merge, so counts appear exactly once.
        assert counters.get("test.sharded.cells") == 1

    def test_pool_worker_obs_deltas_merge_at_join(self):
        with obs.tracing(reset=True):
            outcomes = run_sharded([1, 2, 3, 4], _count_and_echo, jobs=2)
            counters = obs.snapshot()["counters"]
        assert [o.value for o in outcomes] == [1, 2, 3, 4]
        assert counters.get("test.sharded.cells") == 4
        for cell in (1, 2, 3, 4):
            assert counters.get(f"test.sharded.cell_{cell}") == 1

    def test_empty_cells(self):
        assert run_sharded([], _square, jobs=4) == []

    def test_outcome_ok_property(self):
        assert ShardOutcome(index=0, wall_time=0.0, value=1).ok
        assert not ShardOutcome(index=0, wall_time=0.0, error="x").ok


class TestShardedAdversarySweep:
    def test_jobs_do_not_change_the_matrix(self):
        from repro.analysis.ext_adversaries import sweep_detection_matrix

        kwargs = dict(
            scale=0.03,
            kinds=("honest", "fifo"),
            seeds=(11,),
            intensities=(1.0,),
        )
        sequential = sweep_detection_matrix(jobs=1, **kwargs)
        sharded = sweep_detection_matrix(jobs=2, **kwargs)
        assert sharded.to_csv() == sequential.to_csv()
        assert [c.rate for c in sharded.cells] == [
            c.rate for c in sequential.cells
        ]
        assert [c.mean_p for c in sharded.cells] == [
            c.mean_p for c in sequential.cells
        ]


class TestDatasetsBench:
    def test_smoke_grid_passes_all_gates(self, tmp_path):
        document = run_datasets_bench(
            scale=0.02,
            jobs=2,
            battery_ids=["table2"],
            work_dir=tmp_path,
        )
        assert document["benchmark"] == "datasets"
        gates = document["gates"]
        assert gates["byte_identical"]
        assert gates["mmap_engaged"]
        assert gates["battery_ok"]
        for name in ("A", "B", "C"):
            assert document["cold"]["datasets"][name]["columnar_attached"]
            assert document["cold"]["datasets"][name]["gzip_bytes"] > 0
            assert document["cold"]["datasets"][name]["columnar_bytes"] > 0
            assert document["warm"][name]["mmap_attached"]
            assert document["byte_identity"][name]
        assert document["chain_arrays"]["identical"]
        assert document["table2_warm"]["fallback_packs"] == 0
        assert document["table2_warm"]["mmap_packs"] > 0
