"""Unit tests for the decade-scale history generator."""

import pytest

from repro.core.ppe import chain_ppe, summarize_ppe
from repro.simulation.history import (
    BLOCKS_PER_YEAR,
    NORM_SWITCH_YEAR,
    chain_growth_series,
    generate_era_blocks,
    halving_heights,
    recent_transaction_share,
    sample_fee_revenue,
    split_by_switch,
)


class TestChainGrowth:
    def test_blocks_grow_linearly(self):
        growth = chain_growth_series()
        blocks = growth["cumulative_blocks"]
        diffs = blocks[1:] - blocks[:-1]
        assert all(d == BLOCKS_PER_YEAR for d in diffs)

    def test_txs_accelerate(self):
        growth = chain_growth_series()
        txs = growth["cumulative_txs"]
        early_growth = txs[5] - txs[0]
        late_growth = txs[-1] - txs[-6]
        assert late_growth > 5 * early_growth

    def test_recent_share_near_paper(self):
        share = recent_transaction_share(chain_growth_series())
        assert 0.4 < share < 0.75


class TestFeeRevenue:
    def test_rows_cover_requested_years(self):
        rows = sample_fee_revenue(years=(2019, 2020), blocks_per_year=200)
        assert [r.year for r in rows] == [2019, 2020]
        assert all(r.block_count == 200 for r in rows)

    def test_2017_peak(self):
        rows = sample_fee_revenue(blocks_per_year=300)
        means = {r.year: r.mean for r in rows}
        assert means[2017] == max(means.values())

    def test_statistics_internally_consistent(self):
        for row in sample_fee_revenue(blocks_per_year=300):
            assert row.min <= row.p25 <= row.median <= row.p75 <= row.max
            assert 0.0 <= row.mean <= 100.0

    def test_deterministic(self):
        a = sample_fee_revenue(blocks_per_year=100, seed=9)
        b = sample_fee_revenue(blocks_per_year=100, seed=9)
        assert a == b


class TestEraBlocks:
    @pytest.fixture(scope="class")
    def era_blocks(self):
        return generate_era_blocks(blocks_per_month=3, txs_per_block=60, seed=5)

    def test_spans_eras(self, era_blocks):
        years = [eb.year for eb in era_blocks]
        assert min(years) < NORM_SWITCH_YEAR <= max(years)

    def test_split(self, era_blocks):
        pre, post = split_by_switch(era_blocks)
        assert pre and post
        assert len(pre) + len(post) == len(era_blocks)

    def test_fig1_contrast(self, era_blocks):
        pre, post = split_by_switch(era_blocks)
        pre_ppe = summarize_ppe(chain_ppe(pre))
        post_ppe = summarize_ppe(chain_ppe(post))
        assert post_ppe.mean < 1.0  # fee-rate era tracks the norm
        assert pre_ppe.mean > 5 * max(post_ppe.mean, 0.1)

    def test_chain_linkage(self, era_blocks):
        hashes = [eb.block.header.prev_hash for eb in era_blocks[1:]]
        tips = [eb.block.block_hash for eb in era_blocks[:-1]]
        assert hashes == tips


class TestHalvings:
    def test_heights(self):
        heights = halving_heights(630_000)
        assert heights[0] == 210_000
        assert 630_000 in heights
