"""Tests for the mempool size cap (maxmempool eviction semantics)."""

import pytest

from repro.mempool.mempool import Mempool, RejectionReason

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("mempool-limit")


class TestSizeCap:
    def test_under_cap_admits_freely(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=1000)
        for index in range(4):
            assert pool.offer(txf.tx(fee=100, vsize=200), now=float(index)).accepted
        assert pool.total_vsize == 800

    def test_rich_arrival_evicts_cheapest(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=600)
        cheap = txf.tx(fee=100, vsize=300)   # ~0.3 sat/vB
        mid = txf.tx(fee=600, vsize=300)     # 2 sat/vB
        rich = txf.tx(fee=3000, vsize=300)   # 10 sat/vB
        pool.offer(cheap, now=0.0)
        pool.offer(mid, now=1.0)
        result = pool.offer(rich, now=2.0)
        assert result.accepted
        assert cheap.txid in result.replaced
        assert cheap.txid not in pool
        assert mid.txid in pool and rich.txid in pool
        assert pool.total_vsize <= 600

    def test_poor_arrival_bounces_when_full(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=600)
        pool.offer(txf.tx(fee=3000, vsize=300), now=0.0)
        pool.offer(txf.tx(fee=2000, vsize=300), now=1.0)
        result = pool.offer(txf.tx(fee=10, vsize=300), now=2.0)
        assert not result.accepted
        assert result.reason == RejectionReason.MEMPOOL_FULL
        assert len(pool) == 2

    def test_eviction_may_remove_multiple(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=600)
        smalls = [txf.tx(fee=10, vsize=150) for _ in range(4)]
        for index, tx in enumerate(smalls):
            pool.offer(tx, now=float(index))
        big_rich = txf.tx(fee=9000, vsize=450)
        result = pool.offer(big_rich, now=9.0)
        assert result.accepted
        assert len(result.replaced) >= 2
        assert pool.total_vsize <= 600

    def test_oversized_tx_that_cannot_fit_bounces(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=400)
        pool.offer(txf.tx(fee=90_000, vsize=300), now=0.0)  # 300 sat/vB floor
        # Even evicting everything would not make room for 500 vB, and
        # the incumbent pays more anyway.
        result = pool.offer(txf.tx(fee=1000, vsize=500), now=1.0)
        assert not result.accepted

    def test_unlimited_by_default(self, txf):
        pool = Mempool(min_fee_rate=0.0)
        for index in range(50):
            assert pool.offer(
                txf.tx(fee=1, vsize=10_000), now=float(index)
            ).accepted

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Mempool(max_vsize=0)

    def test_accounting_after_evictions(self, txf):
        pool = Mempool(min_fee_rate=0.0, max_vsize=500)
        pool.offer(txf.tx(fee=10, vsize=250), now=0.0)
        pool.offer(txf.tx(fee=20, vsize=250), now=1.0)
        pool.offer(txf.tx(fee=50_000, vsize=400), now=2.0)
        entries = pool.entries()
        assert pool.total_vsize == sum(e.vsize for e in entries)
        assert pool.total_fees == sum(e.tx.fee for e in entries)
