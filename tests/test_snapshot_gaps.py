"""Snapshot gaps: recorders, stores, and analyses over lossy timelines.

A real observer misses snapshot intervals (process restarts, host
downtime).  These tests pin down how the snapshot layer represents such
gaps and that the congestion/delay analyses keep working over a gappy
store instead of assuming a dense 15-second grid.
"""

import numpy as np
import pytest

from repro.core.congestion import (
    DelaySummary,
    commit_delays_in_blocks,
    congested_fraction_by,
    fee_rates_by_congestion,
    mempool_size_series,
)
from repro.faults import FaultSchedule, degrade_dataset, spread_downtime
from repro.faults.quality import assess_quality, detect_gaps
from repro.mempool.mempool import Mempool
from repro.mempool.snapshots import (
    CONGESTION_BINS,
    MempoolSnapshot,
    SnapshotRecorder,
    SnapshotStore,
    SnapshotTx,
)
from repro.simulation.scenarios import honest_scenario

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("gaps")


def _gappy_recorder(txf):
    """Capture at 0..45, skip [60, 120), resume at 120..150."""
    mempool = Mempool(min_fee_rate=0.0)
    recorder = SnapshotRecorder(interval=15.0)
    for index in range(12):
        mempool.offer(txf.tx(fee=2000, vsize=5000), now=float(index))
    for tick in (0.0, 15.0, 30.0, 45.0, 120.0, 135.0, 150.0):
        if recorder.due(tick):
            recorder.capture(mempool, tick)
    return recorder


class TestRecorderWithSkippedIntervals:
    def test_store_preserves_the_gap(self, txf):
        store = _gappy_recorder(txf).store()
        assert store.times == [0.0, 15.0, 30.0, 45.0, 120.0, 135.0, 150.0]
        gaps, missing, seconds = detect_gaps(store.times, interval=15.0)
        assert gaps == 1
        assert missing == 4
        assert seconds == pytest.approx(60.0)

    def test_due_is_true_across_a_gap(self, txf):
        recorder = SnapshotRecorder(interval=15.0)
        mempool = Mempool(min_fee_rate=0.0)
        recorder.capture(mempool, 0.0)
        assert not recorder.due(10.0)
        assert recorder.due(90.0)

    def test_analyses_use_present_snapshots_only(self, txf):
        store = _gappy_recorder(txf).store()
        times, sizes = mempool_size_series(store)
        assert times.shape == sizes.shape == (7,)
        assert congested_fraction_by(store) == 0.0
        assert store.congested_fraction() == 0.0


def _synthetic_store(sizes_by_time):
    snapshots = []
    for time, total_vsize in sizes_by_time:
        txs = (
            SnapshotTx(
                txid=f"tx-{time}", arrival_time=time, fee=1000, vsize=total_vsize
            ),
        )
        snapshots.append(MempoolSnapshot(time=time, txs=txs))
    return SnapshotStore(snapshots)


class TestCongestionOverGappyStore:
    def test_attribution_uses_last_snapshot_before_arrival(self):
        # Congested before the gap, empty after it; the gap itself
        # attributes to the last pre-gap snapshot.
        store = _synthetic_store(
            [(0.0, 2_500_000), (15.0, 2_500_000), (120.0, 100)]
        )
        arrivals = [10.0, 60.0, 125.0]
        rates = [5.0, 10.0, 20.0]
        grouped = fee_rates_by_congestion(arrivals, rates, store)
        assert grouped["(2,4]MB"].tolist() == [5.0, 10.0]
        assert grouped["<=1MB"].tolist() == [20.0]
        for label in CONGESTION_BINS:
            assert isinstance(grouped[label], np.ndarray)

    def test_congested_fraction_counts_snapshots_not_wallclock(self):
        store = _synthetic_store(
            [(0.0, 2_500_000), (15.0, 2_500_000), (120.0, 100)]
        )
        assert congested_fraction_by(store) == pytest.approx(2.0 / 3.0)


class TestDelayPercentilesOverGaps:
    def test_censored_arrivals_are_simply_excluded(self):
        block_times = [600.0 * h for h in range(1, 11)]
        arrivals = [10.0, 650.0, 1300.0, 5000.0]
        heights = [0, 2, 3, 9]
        delays = commit_delays_in_blocks(arrivals, heights, block_times)
        summary = DelaySummary.from_delays(delays)
        assert summary.tx_count == 4
        # Dropping a censored record must not disturb the others.
        partial = commit_delays_in_blocks(
            arrivals[:2] + arrivals[3:], heights[:2] + heights[3:], block_times
        )
        assert partial.tolist() == [delays[0], delays[1], delays[3]]

    def test_delay_summary_of_empty_input_is_degenerate(self):
        summary = DelaySummary.from_delays(np.asarray([], dtype=float))
        assert summary.tx_count == 0
        assert np.isnan(summary.next_block_fraction)


class TestDowntimeGapsEndToEnd:
    def test_degraded_dataset_reports_gap_in_quality(self):
        scenario = honest_scenario(seed=21, blocks=40)
        dataset = scenario.run().dataset
        observer = dataset.metadata.get("observer", dataset.name)
        duration = scenario.engine_config.duration
        schedule = FaultSchedule(
            seed=2, downtime=spread_downtime(observer, duration, 0.25, windows=2)
        )
        degraded = degrade_dataset(dataset, schedule)
        assert len(degraded.snapshots) < len(dataset.snapshots)
        quality = assess_quality(degraded)
        assert quality.snapshot_gap_count >= 1
        assert quality.missing_tick_count > 0
        assert quality.downtime_seconds > 0.0
        # The analyses still run over the gappy store.
        assert 0.0 <= congested_fraction_by(degraded.snapshots) <= 1.0
