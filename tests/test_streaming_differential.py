"""Differential test: streamed audits are bit-identical to batch audits.

The acceptance bar for the streaming refactor (ISSUE 6): feed every
block of a dataset through :meth:`StreamingAuditor.fold_block` one at a
time, run the full ``audit()``, and require the report to equal the
batch :class:`Auditor`'s — exactly, not approximately — on datasets A,
B and C at scale 0.2, *including* over a fault-degraded dataset and in
the scalar dispatch mode.  This reuses the PR 3 oracle discipline:
equality is asserted field-by-field via
:func:`tests.oracle.assert_audit_reports_equal` (NaN-tolerant, else
bit-for-bit).
"""

import pytest

from repro.core.audit import Auditor, StreamingAuditor, stream_blocks
from repro.datasets.builder import (
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
)
from repro.faults import FaultSchedule, degrade_dataset
from tests.oracle import assert_audit_reports_equal

SCALE = 0.2


def stream_to_end(dataset):
    """A StreamingAuditor with every dataset block folded in order."""
    streaming = StreamingAuditor.from_dataset(dataset)
    for _, pool, block in stream_blocks(dataset):
        streaming.fold_block(block, pool)
    return streaming


def assert_stream_equals_batch(dataset):
    streaming = stream_to_end(dataset)
    assert streaming.applied_height == dataset.chain.height
    assert_audit_reports_equal(streaming.audit(), Auditor(dataset).audit())


class TestStreamedAuditEqualsBatch:
    def test_dataset_a(self):
        assert_stream_equals_batch(build_dataset_a(scale=SCALE))

    def test_dataset_b(self):
        assert_stream_equals_batch(build_dataset_b(scale=SCALE))

    def test_dataset_c(self):
        assert_stream_equals_batch(build_dataset_c(scale=SCALE))

    def test_degraded_dataset_a(self):
        """Equality must survive injected faults (gappy observer data)."""
        clean = build_dataset_a(scale=SCALE)
        schedule = FaultSchedule(seed=77, tx_loss_rate=0.15)
        degraded = degrade_dataset(clean, schedule)
        assert Auditor(degraded).quality_report().degraded
        assert_stream_equals_batch(degraded)

    def test_scalar_mode_dataset_a(self, small_dataset_a, monkeypatch):
        """The accumulators are dispatch-agnostic: scalar path too."""
        monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1")
        assert_stream_equals_batch(small_dataset_a)


class TestStreamingIsIncremental:
    def test_mid_stream_audit_equals_batch_prefix(self, small_dataset_a):
        """Auditing *mid-stream* equals a batch audit of the prefix.

        The service answers queries while blocks are still arriving;
        those answers must be the batch truth of the applied prefix,
        not an artifact of partially-folded state.
        """
        feed = list(stream_blocks(small_dataset_a))
        cut = len(feed) // 2
        streaming = StreamingAuditor.from_dataset(small_dataset_a)
        for _, pool, block in feed[:cut]:
            streaming.fold_block(block, pool)

        prefix = truncate_dataset(small_dataset_a, feed[cut - 1][0])
        assert_audit_reports_equal(streaming.audit(), Auditor(prefix).audit())

        # ...and folding the rest still converges to the full answer.
        for _, pool, block in feed[cut:]:
            streaming.fold_block(block, pool)
        assert_audit_reports_equal(
            streaming.audit(), Auditor(small_dataset_a).audit()
        )


def truncate_dataset(dataset, height):
    """The batch view of ``dataset`` as of chain ``height`` (inclusive)."""
    from dataclasses import replace

    from repro.chain.blockchain import Blockchain
    from repro.datasets.dataset import Dataset

    chain = Blockchain()
    for block in dataset.chain:
        if block.height > height:
            break
        chain.append(block)
    kept = {tx.txid for block in chain for tx in block.transactions}
    records = {
        txid: (
            record
            if record.commit_height is None or txid in kept
            else replace(record, commit_height=None, commit_position=None)
        )
        for txid, record in dataset.tx_records.items()
    }
    return Dataset(
        name=dataset.name,
        chain=chain,
        snapshots=dataset.snapshots,
        tx_records=records,
        block_pools={
            h: p for h, p in dataset.block_pools.items() if h <= height
        },
        pool_wallets=dataset.pool_wallets,
        size_series=dataset.size_series,
        metadata=dataset.metadata,
    )
