"""FaultSchedule invariants: determinism, nesting, channel isolation."""

import numpy as np
import pytest

from repro.faults import FaultSchedule, NodeCrash, OutageWindow, spread_downtime
from repro.faults.quality import detect_gaps


@pytest.fixture
def pairs():
    return [(float(i), f"tx{i:04d}") for i in range(200)]


class TestOutageWindow:
    def test_half_open_containment(self):
        window = OutageWindow(node="obs", start=10.0, end=20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert not window.contains(9.999)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            OutageWindow(node="obs", start=5.0, end=5.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            OutageWindow(node="obs", start=-1.0, end=5.0)


class TestScheduleBasics:
    def test_null_schedule(self):
        assert FaultSchedule().is_null
        assert not FaultSchedule(tx_loss_rate=0.1).is_null
        assert not FaultSchedule(
            downtime=(OutageWindow("obs", 0.0, 1.0),)
        ).is_null
        assert not FaultSchedule(stale_block_indexes=(3,)).is_null

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule(tx_loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(pool_loss_rate=-0.1)

    def test_describe_only_non_defaults(self):
        schedule = FaultSchedule(
            seed=9,
            tx_loss_rate=0.2,
            downtime=(OutageWindow("obs", 1.0, 2.0),),
            crashes=(NodeCrash("relay-0", 5.0),),
        )
        described = schedule.describe()
        assert described["seed"] == 9
        assert described["tx_loss_rate"] == 0.2
        assert described["downtime"] == [["obs", 1.0, 2.0]]
        assert described["crashes"] == [["relay-0", 5.0]]
        assert "pool_loss_rate" not in described

    def test_describe_is_json_ready(self):
        import json

        schedule = FaultSchedule(seed=3, tx_loss_rate=0.1, stale_block_indexes=(1, 4))
        assert json.loads(json.dumps(schedule.describe())) == schedule.describe()


class TestLossMasks:
    def test_deterministic_per_seed(self, pairs):
        a = FaultSchedule(seed=5, tx_loss_rate=0.3)
        b = FaultSchedule(seed=5, tx_loss_rate=0.3)
        assert a.observer_lost_txids("obs", pairs) == b.observer_lost_txids(
            "obs", pairs
        )

    def test_different_seeds_differ(self, pairs):
        a = FaultSchedule(seed=5, tx_loss_rate=0.3)
        b = FaultSchedule(seed=6, tx_loss_rate=0.3)
        assert a.observer_lost_txids("obs", pairs) != b.observer_lost_txids(
            "obs", pairs
        )

    def test_masks_nested_across_rates(self, pairs):
        lost_sets = [
            FaultSchedule(seed=5, tx_loss_rate=rate).observer_lost_txids(
                "obs", pairs
            )
            for rate in (0.1, 0.3, 0.6, 0.9)
        ]
        for smaller, larger in zip(lost_sets, lost_sets[1:]):
            assert smaller <= larger

    def test_zero_rate_draws_nothing(self):
        schedule = FaultSchedule(seed=5)
        mask = schedule.loss_mask("tx-loss/obs", 100, 0.0)
        assert not mask.any()

    def test_canonical_order_insensitive_to_input_order(self, pairs):
        schedule = FaultSchedule(seed=5, tx_loss_rate=0.4)
        shuffled = list(pairs)
        np.random.default_rng(0).shuffle(shuffled)
        assert schedule.observer_lost_txids(
            "obs", pairs
        ) == schedule.observer_lost_txids("obs", shuffled)

    def test_channels_independent(self, pairs):
        schedule = FaultSchedule(seed=5, tx_loss_rate=0.3, pool_loss_rate=0.3)
        observer = schedule.observer_lost_txids("obs", pairs)
        pool = schedule.pool_lost_txids("F2Pool", pairs)
        other_observer = schedule.observer_lost_txids("obs2", pairs)
        assert observer != pool
        assert observer != other_observer

    def test_loss_rate_approximated(self, pairs):
        schedule = FaultSchedule(seed=5, tx_loss_rate=0.3)
        lost = schedule.observer_lost_txids("obs", pairs)
        assert 0.15 < len(lost) / len(pairs) < 0.45


class TestStaleBlocks:
    def test_explicit_indexes_forced(self):
        schedule = FaultSchedule(seed=5, stale_block_indexes=(0, 7))
        mask = schedule.stale_mask(10)
        assert mask[0] and mask[7]
        assert mask.sum() == 2

    def test_out_of_range_indexes_ignored(self):
        schedule = FaultSchedule(seed=5, stale_block_indexes=(99,))
        assert not schedule.stale_mask(10).any()

    def test_rate_masks_nested(self):
        low = FaultSchedule(seed=5, stale_block_rate=0.1).stale_mask(500)
        high = FaultSchedule(seed=5, stale_block_rate=0.4).stale_mask(500)
        assert not (low & ~high).any()


class TestWindows:
    def test_per_node_filtering(self):
        schedule = FaultSchedule(
            downtime=(
                OutageWindow("obs", 0.0, 10.0),
                OutageWindow("relay", 5.0, 15.0),
            ),
            partitions=(OutageWindow("obs", 20.0, 30.0),),
            crashes=(NodeCrash("relay", 7.0), NodeCrash("relay", 3.0)),
        )
        assert len(schedule.downtime_for("obs")) == 1
        assert schedule.crash_times_for("relay") == (3.0, 7.0)
        assert schedule.is_down("obs", 5.0)
        assert not schedule.is_down("obs", 10.0)
        assert schedule.in_partition("obs", 25.0)
        assert schedule.partition_at("obs", 25.0).end == 30.0
        assert schedule.partition_at("obs", 35.0) is None


class TestSpreadDowntime:
    def test_total_duration_matches_fraction(self):
        windows = spread_downtime("obs", 1000.0, 0.3, windows=4)
        assert len(windows) == 4
        total = sum(w.duration for w in windows)
        assert total == pytest.approx(300.0)

    def test_windows_disjoint_and_ordered(self):
        windows = spread_downtime("obs", 1000.0, 0.5, windows=3)
        for earlier, later in zip(windows, windows[1:]):
            assert earlier.end < later.start

    def test_zero_fraction_empty(self):
        assert spread_downtime("obs", 1000.0, 0.0) == ()

    def test_full_fraction_rejected(self):
        with pytest.raises(ValueError):
            spread_downtime("obs", 1000.0, 1.0)


class TestDetectGaps:
    def test_uniform_timeline_has_no_gaps(self):
        times = [float(t) for t in range(0, 150, 15)]
        gaps, missing, seconds = detect_gaps(times, interval=15.0)
        assert (gaps, missing, seconds) == (0, 0, 0.0)

    def test_single_gap_counted(self):
        times = [0.0, 15.0, 30.0, 90.0, 105.0]
        gaps, missing, seconds = detect_gaps(times, interval=15.0)
        assert gaps == 1
        assert missing == 3
        assert seconds == pytest.approx(45.0)

    def test_interval_inferred_from_median(self):
        times = [0.0, 15.0, 30.0, 45.0, 120.0, 135.0]
        gaps, missing, _ = detect_gaps(times)
        assert gaps == 1
        assert missing == 4

    def test_short_timelines_trivial(self):
        assert detect_gaps([]) == (0, 0, 0.0)
        assert detect_gaps([5.0]) == (0, 0, 0.0)
