"""Unit tests for dataset persistence (gzip-JSON round trips)."""

import pytest

from repro.datasets.io import (
    DatasetCorruptionError,
    dataset_from_dict,
    dataset_path,
    dataset_to_dict,
    load_dataset,
    load_if_exists,
    save_dataset,
)

from test_records_dataset import build_small_dataset
from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("dataset")


class TestRoundTrip:
    def test_dict_round_trip_preserves_chain(self, txf):
        dataset, *_ = build_small_dataset(txf)
        restored = dataset_from_dict(dataset_to_dict(dataset))
        assert restored.block_count == dataset.block_count
        assert restored.chain.tip_hash == dataset.chain.tip_hash
        for original, copy in zip(dataset.chain, restored.chain):
            assert original.block_hash == copy.block_hash
            assert [t.txid for t in original] == [t.txid for t in copy]

    def test_round_trip_preserves_records(self, txf):
        dataset, wallet_tx, *_ = build_small_dataset(txf)
        restored = dataset_from_dict(dataset_to_dict(dataset))
        original = dataset.tx_records[wallet_tx.txid]
        copy = restored.tx_records[wallet_tx.txid]
        assert copy == original

    def test_round_trip_preserves_pools_and_wallets(self, txf):
        dataset, *_ = build_small_dataset(txf)
        restored = dataset_from_dict(dataset_to_dict(dataset))
        assert restored.block_pools == dataset.block_pools
        assert restored.pool_wallets == dataset.pool_wallets

    def test_file_round_trip(self, txf, tmp_path):
        dataset, *_ = build_small_dataset(txf)
        path = save_dataset(dataset, tmp_path / "ds.json.gz")
        restored = load_dataset(path)
        assert restored.name == dataset.name
        assert restored.tx_count == dataset.tx_count

    def test_unknown_version_rejected(self, txf):
        dataset, *_ = build_small_dataset(txf)
        payload = dataset_to_dict(dataset)
        payload["version"] = 99
        with pytest.raises(ValueError):
            dataset_from_dict(payload)

    def test_load_if_exists(self, txf, tmp_path):
        assert load_if_exists(tmp_path / "missing.json.gz") is None
        dataset, *_ = build_small_dataset(txf)
        path = save_dataset(dataset, tmp_path / "ds.json.gz")
        assert load_if_exists(path) is not None

    def test_dataset_path_layout(self, tmp_path):
        path = dataset_path(tmp_path, "dataset-A", 42)
        assert path.name == "dataset-A-seed42.json.gz"

    def test_corrupted_linkage_fails_validation(self, txf):
        dataset, *_ = build_small_dataset(txf)
        payload = dataset_to_dict(dataset)
        # Swap block order: heights/linkage no longer validate.
        payload["blocks"] = payload["blocks"][::-1]
        with pytest.raises(Exception):
            dataset_from_dict(payload)

    def test_snapshot_and_series_round_trip(self, small_dataset_a):
        payload = dataset_to_dict(small_dataset_a)
        restored = dataset_from_dict(payload)
        assert len(restored.snapshots) == len(small_dataset_a.snapshots)
        assert restored.size_series is not None
        assert restored.size_series.sizes() == small_dataset_a.size_series.sizes()


class TestRobustPersistence:
    def test_save_is_atomic_and_leaves_no_temp_file(self, txf, tmp_path):
        dataset, *_ = build_small_dataset(txf)
        path = save_dataset(dataset, tmp_path / "ds.json.gz")
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_save_is_byte_deterministic(self, txf, tmp_path):
        dataset, *_ = build_small_dataset(txf)
        first = save_dataset(dataset, tmp_path / "one.json.gz").read_bytes()
        second = save_dataset(dataset, tmp_path / "two.json.gz").read_bytes()
        assert first == second

    def test_missing_file_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.json.gz")

    def test_truncated_gzip_raises_corruption_error(self, txf, tmp_path):
        dataset, *_ = build_small_dataset(txf)
        path = save_dataset(dataset, tmp_path / "ds.json.gz")
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(DatasetCorruptionError) as excinfo:
            load_dataset(path)
        assert str(path) in str(excinfo.value)

    def test_non_gzip_bytes_raise_corruption_error(self, tmp_path):
        path = tmp_path / "ds.json.gz"
        path.write_bytes(b"plainly not gzip data")
        with pytest.raises(DatasetCorruptionError):
            load_dataset(path)

    def test_malformed_json_reports_offset(self, tmp_path):
        import gzip

        path = tmp_path / "ds.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write('{"version": 1, "oops..')
        with pytest.raises(DatasetCorruptionError) as excinfo:
            load_dataset(path)
        assert excinfo.value.offset is not None
        assert "offset" in str(excinfo.value)

    def test_structurally_invalid_payload_raises_corruption_error(
        self, txf, tmp_path
    ):
        import gzip
        import json

        dataset, *_ = build_small_dataset(txf)
        payload = dataset_to_dict(dataset)
        del payload["blocks"]
        path = tmp_path / "ds.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(DatasetCorruptionError) as excinfo:
            load_dataset(path)
        assert "invalid structure" in excinfo.value.reason

    def test_corruption_error_is_a_value_error(self):
        assert issubclass(DatasetCorruptionError, ValueError)

    def test_csv_export_leaves_no_temp_files(self, small_dataset_a, tmp_path):
        from repro.datasets.export import export_csv

        counts = export_csv(small_dataset_a, tmp_path)
        assert counts
        leftovers = [p for p in tmp_path.iterdir() if not p.suffix == ".csv"]
        assert leftovers == []
