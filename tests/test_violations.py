"""Unit tests for pairwise selection-norm violation detection."""

import numpy as np
import pytest

from repro.core.violations import (
    SnapshotView,
    analyze_snapshot,
    analyze_snapshots,
    build_snapshot_view,
    count_violations,
    enumerate_violating_pairs,
)
from repro.mempool.snapshots import MempoolSnapshot, SnapshotTx


def view_from(rows):
    """rows: (txid, arrival, fee_rate, commit_height)."""
    return SnapshotView(
        time=0.0,
        txids=tuple(r[0] for r in rows),
        arrival_times=np.asarray([r[1] for r in rows], dtype=float),
        fee_rates=np.asarray([r[2] for r in rows], dtype=float),
        commit_heights=np.asarray([r[3] for r in rows], dtype=np.int64),
    )


class TestCountViolations:
    def test_textbook_violation(self):
        # i earlier, richer, committed later than j.
        eligible, violating = count_violations([0.0, 10.0], [50.0, 5.0], [7, 3])
        assert (eligible, violating) == (1, 1)

    def test_norm_conformant_pair(self):
        eligible, violating = count_violations([0.0, 10.0], [50.0, 5.0], [3, 7])
        assert (eligible, violating) == (1, 0)

    def test_later_richer_is_not_eligible(self):
        eligible, violating = count_violations([10.0, 0.0], [50.0, 5.0], [7, 3])
        assert eligible == 0

    def test_epsilon_excludes_near_simultaneous(self):
        eligible, _ = count_violations([0.0, 5.0], [50.0, 5.0], [7, 3], epsilon=10.0)
        assert eligible == 0
        eligible, _ = count_violations([0.0, 15.0], [50.0, 5.0], [7, 3], epsilon=10.0)
        assert eligible == 1

    def test_equal_fee_rates_not_eligible(self):
        eligible, _ = count_violations([0.0, 10.0], [5.0, 5.0], [7, 3])
        assert eligible == 0

    def test_same_block_not_violating(self):
        _, violating = count_violations([0.0, 10.0], [50.0, 5.0], [3, 3])
        assert violating == 0

    def test_block_size_chunking_consistent(self):
        rng = np.random.default_rng(0)
        n = 300
        times = rng.uniform(0, 100, n)
        rates = rng.uniform(1, 100, n)
        heights = rng.integers(0, 20, n)
        small = count_violations(times, rates, heights, block_size=7)
        large = count_violations(times, rates, heights, block_size=1024)
        assert small == large

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            count_violations([0.0], [1.0, 2.0], [0, 1])


class TestSnapshotView:
    def _snapshot(self):
        txs = (
            SnapshotTx("early-rich", 0.0, 5000, 100),
            SnapshotTx("late-poor", 20.0, 100, 100),
            SnapshotTx("uncommitted", 5.0, 300, 100),
            SnapshotTx("cpfp-child", 8.0, 900, 100),
        )
        return MempoolSnapshot(time=30.0, txs=txs)

    def test_build_drops_uncommitted(self):
        commits = {"early-rich": 9, "late-poor": 2, "cpfp-child": 2}
        view = build_snapshot_view(self._snapshot(), commits)
        assert set(view.txids) == {"early-rich", "late-poor", "cpfp-child"}

    def test_build_drops_cpfp_when_asked(self):
        commits = {"early-rich": 9, "late-poor": 2, "cpfp-child": 2}
        view = build_snapshot_view(
            self._snapshot(), commits, cpfp_txids=frozenset({"cpfp-child"})
        )
        assert set(view.txids) == {"early-rich", "late-poor"}

    def test_analyze_snapshot_counts(self):
        commits = {"early-rich": 9, "late-poor": 2}
        view = build_snapshot_view(self._snapshot(), commits)
        stats = analyze_snapshot(view)
        assert stats.tx_count == 2
        assert stats.total_pairs == 1
        assert stats.violating_pairs == 1
        assert stats.violating_fraction == 1.0
        assert stats.violating_fraction_of_eligible == 1.0

    def test_zero_tx_snapshot(self):
        view = build_snapshot_view(MempoolSnapshot(time=0.0, txs=()), {})
        stats = analyze_snapshot(view)
        assert stats.violating_fraction == 0.0

    def test_analyze_snapshots_multi_epsilon(self):
        commits = {"early-rich": 9, "late-poor": 2}
        view = build_snapshot_view(self._snapshot(), commits)
        results = analyze_snapshots([view], epsilons=(0.0, 10.0, 600.0))
        assert set(results) == {0.0, 10.0, 600.0}
        assert results[0.0][0].violating_pairs == 1
        assert results[600.0][0].violating_pairs == 0  # ε kills the pair

    def test_epsilon_monotone(self):
        rng = np.random.default_rng(7)
        n = 120
        rows = [
            (f"t{i}", float(rng.uniform(0, 1000)), float(rng.uniform(1, 200)), int(rng.integers(0, 30)))
            for i in range(n)
        ]
        view = view_from(rows)
        counts = [
            analyze_snapshot(view, epsilon).violating_pairs
            for epsilon in (0.0, 10.0, 100.0, 600.0)
        ]
        assert counts == sorted(counts, reverse=True)


class TestEnumeratePairs:
    def test_enumerates_expected_pair(self):
        view = view_from(
            [("a", 0.0, 50.0, 7), ("b", 10.0, 5.0, 3)]
        )
        assert enumerate_violating_pairs(view) == [("a", "b")]

    def test_limit(self):
        rows = [("a", 0.0, 100.0, 9)] + [
            (f"b{i}", 10.0 + i, 1.0 + i * 0.1, i % 3) for i in range(10)
        ]
        view = view_from(rows)
        pairs = enumerate_violating_pairs(view, limit=3)
        assert len(pairs) == 3

    def test_count_matches_enumeration(self):
        rng = np.random.default_rng(3)
        rows = [
            (f"t{i}", float(rng.uniform(0, 100)), float(rng.uniform(1, 50)), int(rng.integers(0, 10)))
            for i in range(60)
        ]
        view = view_from(rows)
        stats = analyze_snapshot(view)
        pairs = enumerate_violating_pairs(view)
        assert len(pairs) == stats.violating_pairs
