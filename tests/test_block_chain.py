"""Unit tests for blocks, headers, merkle roots, and the chain container."""

import pytest

from repro.chain.block import GENESIS_HASH, build_block, merkle_root
from repro.chain.blockchain import Blockchain, ChainValidationError
from repro.chain.constants import MAX_BLOCK_VSIZE
from repro.chain.transaction import make_coinbase

from conftest import TxFactory, make_test_block


@pytest.fixture
def factory():
    return TxFactory("block-tests")


class TestMerkleRoot:
    def test_deterministic(self):
        assert merkle_root(["a", "b", "c"]) == merkle_root(["a", "b", "c"])

    def test_order_sensitive(self):
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_empty_list_has_root(self):
        assert len(merkle_root([])) == 64

    def test_odd_count_handled(self):
        assert len(merkle_root(["a", "b", "c"])) == 64

    def test_single_leaf_is_the_leaf(self):
        # Bitcoin semantics: a one-transaction tree's root is the txid.
        assert merkle_root(["only"]) == "only"


class TestBlock:
    def test_positions(self, factory):
        txs = [factory.tx(nonce=i) for i in range(4)]
        block = make_test_block(txs)
        assert block.position_of(txs[0].txid) == 0
        assert block.position_of(txs[3].txid) == 3
        assert block.position_of("missing") is None
        assert block.positions() == {tx.txid: i for i, tx in enumerate(txs)}

    def test_total_fees_excludes_coinbase(self, factory):
        txs = [factory.tx(fee=100), factory.tx(fee=250)]
        block = make_test_block(txs)
        assert block.total_fees == 350

    def test_vsize_includes_coinbase(self, factory):
        txs = [factory.tx(vsize=300)]
        block = make_test_block(txs)
        assert block.vsize == 300 + block.coinbase.vsize

    def test_empty_block(self):
        block = make_test_block([])
        assert block.is_empty
        assert block.tx_count == 0

    def test_duplicate_tx_rejected(self, factory):
        tx = factory.tx()
        with pytest.raises(ValueError):
            make_test_block([tx, tx])

    def test_oversized_block_rejected(self, factory):
        txs = [factory.tx(vsize=90_000, nonce=i) for i in range(12)]
        with pytest.raises(ValueError):
            make_test_block(txs)

    def test_header_hash_changes_with_content(self, factory):
        a = make_test_block([factory.tx(nonce=1)])
        b = make_test_block([factory.tx(nonce=2)])
        assert a.block_hash != b.block_hash

    def test_iter_and_len(self, factory):
        txs = [factory.tx(nonce=i) for i in range(3)]
        block = make_test_block(txs)
        assert len(block) == 3
        assert list(block) == txs


class TestBlockchain:
    def _chain_of(self, factory, count):
        chain = Blockchain()
        for height in range(count):
            block = make_test_block(
                [factory.tx(nonce=height * 10 + i) for i in range(2)],
                height=height,
                prev_hash=chain.tip_hash,
                timestamp=float(height),
            )
            chain.append(block)
        return chain

    def test_appends_and_heights(self, factory):
        chain = self._chain_of(factory, 3)
        assert len(chain) == 3
        assert chain.height == 2
        assert chain[1].height == 1

    def test_empty_chain_tip_is_genesis(self):
        assert Blockchain().tip_hash == GENESIS_HASH

    def test_wrong_height_rejected(self, factory):
        chain = self._chain_of(factory, 1)
        bad = make_test_block([], height=5, prev_hash=chain.tip_hash, timestamp=9.0)
        with pytest.raises(ChainValidationError):
            chain.append(bad)

    def test_wrong_prev_hash_rejected(self, factory):
        chain = self._chain_of(factory, 1)
        bad = make_test_block([], height=1, prev_hash="00" * 32, timestamp=9.0)
        with pytest.raises(ChainValidationError):
            chain.append(bad)

    def test_backwards_timestamp_rejected(self, factory):
        chain = self._chain_of(factory, 2)
        bad = make_test_block(
            [], height=2, prev_hash=chain.tip_hash, timestamp=-5.0
        )
        with pytest.raises(ChainValidationError):
            chain.append(bad)

    def test_duplicate_transaction_rejected(self, factory):
        tx = factory.tx()
        chain = Blockchain()
        chain.append(make_test_block([tx], height=0, timestamp=0.0))
        dup = make_test_block(
            [tx], height=1, prev_hash=chain.tip_hash, timestamp=1.0
        )
        with pytest.raises(ChainValidationError):
            chain.append(dup)

    def test_location_lookup(self, factory):
        txs = [factory.tx(nonce=i) for i in range(3)]
        chain = Blockchain()
        chain.append(make_test_block(txs, height=0, timestamp=0.0))
        location = chain.location_of(txs[2].txid)
        assert location is not None
        assert (location.height, location.position) == (0, 2)
        assert chain.location_of("nope") is None

    def test_transaction_lookup_includes_coinbase(self, factory):
        chain = self._chain_of(factory, 1)
        block = chain[0]
        assert chain.transaction(block.coinbase.txid) is block.coinbase

    def test_iter_transactions(self, factory):
        chain = self._chain_of(factory, 2)
        triples = list(chain.iter_transactions())
        assert len(triples) == 4
        assert triples[0][0].height == 0

    def test_resolve_input_addresses(self, factory):
        parent = factory.tx(to_address="alice", nonce=100)
        child = factory.tx(parents=(parent.txid,), nonce=101)
        chain = Blockchain()
        chain.append(make_test_block([parent], height=0, timestamp=0.0))
        chain.append(
            make_test_block(
                [child], height=1, prev_hash=chain.tip_hash, timestamp=1.0
            )
        )
        # The child's first input is synthetic (index 0 of an unknown tx),
        # its extra parent points at outpoint 0 of the parent -> "alice".
        assert "alice" in chain.resolve_input_addresses(child)

    def test_transactions_touching_finds_receivers_and_senders(self, factory):
        wallet = frozenset({"pool-wallet"})
        incoming = factory.tx(to_address="pool-wallet", nonce=200)
        spender = factory.tx(parents=(incoming.txid,), nonce=201)
        unrelated = factory.tx(nonce=202)
        chain = Blockchain()
        chain.append(make_test_block([incoming, unrelated], height=0, timestamp=0.0))
        chain.append(
            make_test_block(
                [spender], height=1, prev_hash=chain.tip_hash, timestamp=1.0
            )
        )
        touching = set(chain.transactions_touching(wallet))
        assert incoming.txid in touching
        assert spender.txid in touching
        assert unrelated.txid not in touching
