"""Unit/integration tests for the engine and scenario builders."""

import numpy as np
import pytest

from repro.chain.constants import MAX_BLOCK_VSIZE
from repro.mining.gbt import is_topologically_valid
from repro.simulation.engine import (
    EngineConfig,
    ObserverConfig,
    SimulationEngine,
    generate_block_schedule,
)
from repro.simulation.rng import RngStreams
from repro.simulation.scenarios import (
    dataset_a_scenario,
    dataset_c_scenario,
    find_pool,
    honest_scenario,
    scam_window_bounds,
)
from repro.simulation.workload import PlannedTx

from conftest import TxFactory


@pytest.fixture
def txf():
    return TxFactory("engine")


class TestBlockSchedule:
    def test_respects_duration(self):
        schedule = generate_block_schedule(
            6000.0, 600.0, [0.5, 0.5], np.random.default_rng(0)
        )
        assert all(0 < t <= 6000.0 for t, _ in schedule)

    def test_winner_frequencies_track_shares(self):
        schedule = generate_block_schedule(
            600.0 * 5000, 600.0, [0.8, 0.2], np.random.default_rng(0)
        )
        winners = [w for _, w in schedule]
        share0 = winners.count(0) / len(winners)
        assert share0 == pytest.approx(0.8, abs=0.03)

    def test_mean_interval_near_target(self):
        schedule = generate_block_schedule(
            600.0 * 3000, 600.0, [1.0], np.random.default_rng(0)
        )
        times = [t for t, _ in schedule]
        intervals = np.diff([0.0] + times)
        assert float(intervals.mean()) == pytest.approx(600.0, rel=0.1)


class TestHonestScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return honest_scenario(seed=11, blocks=40).run()

    def test_dataset_basics(self, result):
        dataset = result.dataset
        assert dataset.block_count > 10
        assert dataset.tx_count > 500
        assert dataset.size_series is not None

    def test_blocks_respect_vsize_limit(self, result):
        for block in result.dataset.chain:
            assert block.vsize <= MAX_BLOCK_VSIZE

    def test_blocks_topologically_valid(self, result):
        for block in result.dataset.chain:
            assert is_topologically_valid(block.transactions)

    def test_no_duplicate_commits(self, result):
        seen = set()
        for block in result.dataset.chain:
            for tx in block.transactions:
                assert tx.txid not in seen
                seen.add(tx.txid)

    def test_child_never_commits_before_parent(self, result):
        dataset = result.dataset
        commits = dataset.commit_heights()
        for block in dataset.chain:
            for position, tx in enumerate(block.transactions):
                for parent in tx.parent_txids:
                    if parent in commits:
                        assert (commits[parent], 0) <= (block.height, position)

    def test_attribution_shares_track_configured(self, result):
        dataset = result.dataset
        estimates = {e.pool: e.share for e in dataset.hash_rates()}
        # F2Pool configured at 17.5% of an 8-pool subset (~21% renormalised).
        assert estimates.get("F2Pool", 0.0) > 0.05

    def test_tx_records_consistent_with_chain(self, result):
        dataset = result.dataset
        for block in dataset.chain:
            for position, tx in enumerate(block.transactions):
                record = dataset.tx_records[tx.txid]
                assert record.commit_height == block.height
                assert record.commit_position == position

    def test_snapshot_sizes_match_series_scale(self, result):
        dataset = result.dataset
        series = dataset.size_series
        assert len(series) > 100
        # Snapshots are a sample of series ticks.
        tick_times = set(series.times)
        assert all(s.time in tick_times for s in dataset.snapshots)

    def test_determinism(self):
        first = honest_scenario(seed=12, blocks=15).run().dataset
        second = honest_scenario(seed=12, blocks=15).run().dataset
        assert first.chain.tip_hash == second.chain.tip_hash
        assert first.size_series.sizes() == second.size_series.sizes()


class TestEngineValidation:
    def test_requires_pools_and_observers(self):
        streams = RngStreams(0)
        with pytest.raises(ValueError):
            SimulationEngine(
                EngineConfig(duration=100.0), [], [ObserverConfig("o")], streams
            )

    def test_empty_plan_yields_empty_blocks(self, txf):
        from repro.mining.pool import MiningPool

        streams = RngStreams(3)
        engine = SimulationEngine(
            EngineConfig(duration=6000.0),
            [MiningPool(name="P", marker="/P/", hash_share=1.0)],
            [ObserverConfig("o")],
            streams,
        )
        result = engine.run([])
        assert all(block.is_empty for block in result.dataset.chain)


class TestScenarioBuilders:
    def test_scale_controls_size(self):
        small = dataset_a_scenario(scale=0.05)
        large = dataset_a_scenario(scale=0.2)
        assert small.engine_config.duration < large.engine_config.duration

    def test_find_pool(self):
        scenario = dataset_c_scenario(scale=0.05)
        assert find_pool(scenario, "F2Pool") is not None
        assert find_pool(scenario, "NoSuchPool") is None

    def test_scam_window_inside_run(self):
        scenario = dataset_c_scenario(scale=0.05)
        start, end = scam_window_bounds(scenario)
        assert 0.0 < start < end < scenario.engine_config.duration

    def test_dataset_c_has_misbehaviour_wiring(self):
        scenario = dataset_c_scenario(scale=0.05)
        f2pool = find_pool(scenario, "F2Pool")
        from repro.mining.policies import PrioritizeSetPolicy

        assert isinstance(f2pool.policy, PrioritizeSetPolicy)
        poolin = find_pool(scenario, "Poolin")
        assert not isinstance(poolin.policy, PrioritizeSetPolicy)

    def test_dataset_a_pools_honest(self):
        scenario = dataset_a_scenario(scale=0.05)
        from repro.mining.policies import PrioritizeSetPolicy

        assert not any(
            isinstance(pool.policy, PrioritizeSetPolicy) for pool in scenario.pools
        )

    def test_ghost_pool_unregistered(self):
        scenario = dataset_c_scenario(scale=0.05)
        ghost = find_pool(scenario, "ghost-fringe")
        assert ghost is not None and not ghost.registered


class TestCuratedDatasets:
    """Checks on the session-scoped scaled datasets."""

    def test_dataset_a_metadata(self, small_dataset_a):
        assert small_dataset_a.metadata["scenario"] == "dataset-A"
        assert small_dataset_a.metadata["min_fee_rate"] == 1.0

    def test_dataset_b_accepts_zero_fee(self, small_dataset_b):
        zero_fee = small_dataset_b.labelled_txids("zero-fee")
        assert zero_fee
        observed = [
            small_dataset_b.tx_records[txid].observed for txid in zero_fee
        ]
        assert any(observed)

    def test_dataset_a_rejects_low_fee_at_observer(self, small_dataset_a):
        # The A observer enforces the 1 sat/vB default: every observed
        # transaction respects it.
        for record in small_dataset_a.tx_records.values():
            if record.observed:
                assert record.fee_rate >= 1.0

    def test_dataset_c_ground_truth_labels_present(self, small_dataset_c):
        assert small_dataset_c.scam_txids()
        assert small_dataset_c.accelerated_txids()
        assert small_dataset_c.self_interest_txids("F2Pool")

    def test_scam_window_metadata(self, small_dataset_c):
        start, end = small_dataset_c.metadata["scam_window"]
        assert start < end
