"""Unit tests for congestion, delay, and fee-band analyses."""

import numpy as np
import pytest

from repro.core.congestion import (
    DelaySummary,
    FeeRateSummary,
    commit_delays_in_blocks,
    congested_fraction_by,
    dataset_fee_rates_by_pool,
    delays_by_fee_band,
    fee_band,
    fee_rates_by_congestion,
    mempool_size_series,
    stochastic_dominance_ok,
)
from repro.mempool.snapshots import MempoolSnapshot, SnapshotStore, SnapshotTx


def store_with_sizes(spec):
    """spec: list of (time, total_vsize) — encoded as a single fat tx."""
    snaps = [
        MempoolSnapshot(
            time=t, txs=(SnapshotTx(f"tx{t}", t, 100, size),) if size else ()
        )
        for t, size in spec
    ]
    return SnapshotStore(snaps)


class TestFeeBands:
    def test_band_edges(self):
        assert fee_band(5.0) == "low"
        assert fee_band(10.0) == "high"
        assert fee_band(100.0) == "high"
        assert fee_band(100.1) == "exorbitant"

    def test_paper_units(self):
        # 1e-4 BTC/KB == 10 sat/vB is the low/high edge.
        assert fee_band(9.99) == "low"


class TestCommitDelays:
    def test_next_block_is_delay_one(self):
        block_times = [10.0, 20.0, 30.0]
        delays = commit_delays_in_blocks([5.0], [0], block_times)
        assert delays.tolist() == [1]

    def test_skipped_blocks_counted(self):
        block_times = [10.0, 20.0, 30.0]
        delays = commit_delays_in_blocks([5.0], [2], block_times)
        assert delays.tolist() == [3]

    def test_arrival_after_block_clamps(self):
        block_times = [10.0]
        delays = commit_delays_in_blocks([50.0], [0], block_times)
        assert delays.tolist() == [1]

    def test_arrival_exactly_at_block_time(self):
        # A tx arriving exactly when block 0 is found can only make block 1.
        delays = commit_delays_in_blocks([10.0], [1], [10.0, 20.0])
        assert delays.tolist() == [1]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            commit_delays_in_blocks([1.0, 2.0], [0], [10.0])

    def test_summary(self):
        delays = np.asarray([1, 1, 1, 3, 12])
        summary = DelaySummary.from_delays(delays)
        assert summary.next_block_fraction == pytest.approx(0.6)
        assert summary.delayed_3plus_fraction == pytest.approx(0.4)
        assert summary.delayed_10plus_fraction == pytest.approx(0.2)
        assert summary.max_delay == 12

    def test_summary_empty(self):
        summary = DelaySummary.from_delays(np.asarray([]))
        assert summary.tx_count == 0


class TestDelayByBand:
    def test_grouping(self):
        rates = np.asarray([5.0, 50.0, 500.0])
        delays = np.asarray([9, 3, 1])
        grouped = delays_by_fee_band(rates, delays)
        assert grouped["low"].tolist() == [9]
        assert grouped["high"].tolist() == [3]
        assert grouped["exorbitant"].tolist() == [1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            delays_by_fee_band(np.asarray([1.0]), np.asarray([1, 2]))


class TestFeeRatesByCongestion:
    def test_attribution_to_bins(self):
        store = store_with_sizes([(0.0, 500_000), (15.0, 3_000_000)])
        grouped = fee_rates_by_congestion(
            arrival_times=[5.0, 20.0],
            fee_rates=[10.0, 99.0],
            snapshots=store,
        )
        assert grouped["<=1MB"].tolist() == [10.0]
        assert grouped["(2,4]MB"].tolist() == [99.0]

    def test_pre_first_snapshot_clamps(self):
        store = store_with_sizes([(10.0, 500_000)])
        grouped = fee_rates_by_congestion([0.0], [42.0], store)
        assert grouped["<=1MB"].tolist() == [42.0]

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            fee_rates_by_congestion([0.0], [1.0], SnapshotStore([]))


class TestMisc:
    def test_fee_rate_summary(self):
        summary = FeeRateSummary.from_rates([0.5, 5.0, 50.0, 500.0])
        assert summary.below_minimum_fraction == pytest.approx(0.25)
        assert summary.mid_band_fraction == pytest.approx(0.25)
        assert summary.exorbitant_fraction == pytest.approx(0.25)

    def test_dominance_check(self):
        small = np.asarray([1.0, 2.0, 3.0] * 10)
        large = np.asarray([5.0, 6.0, 7.0] * 10)
        assert stochastic_dominance_ok(small, large)
        assert not stochastic_dominance_ok(large, small)
        assert not stochastic_dominance_ok(np.asarray([]), large)

    def test_mempool_size_series(self):
        store = store_with_sizes([(0.0, 100), (15.0, 200)])
        times, sizes = mempool_size_series(store)
        assert times.tolist() == [0.0, 15.0]
        assert sizes.tolist() == [100, 200]

    def test_congested_fraction_by(self):
        store = store_with_sizes([(0.0, 2_000_000), (15.0, 100)])
        assert congested_fraction_by(store) == pytest.approx(0.5)
        assert congested_fraction_by(SnapshotStore([])) == 0.0

    def test_fee_rates_by_pool(self):
        grouped = dataset_fee_rates_by_pool(
            commit_pool={"t1": "A", "t2": "B", "t3": "A"},
            fee_rates={"t1": 5.0, "t2": 7.0, "t3": 9.0},
        )
        assert grouped["A"].tolist() == [5.0, 9.0]
        assert grouped["B"].tolist() == [7.0]
