"""Tests for the columnar (npz) dataset store.

The columnar file is the *hot-path* form of a dataset — typed arrays
the vectorized kernels can memory-map zero-copy — while gzip-JSON stays
the interchange form.  The load-bearing contract tested here:

* round-tripping a dataset through the columnar store reproduces the
  gzip-JSON interchange *byte for byte*,
* writes are atomic and deterministic,
* every flavour of torn/truncated/garbled file maps to a typed
  :class:`DatasetCorruptionError` (with a byte offset where one
  exists), mirroring the gzip reader's error semantics,
* ``ChainArrays`` packs bit-identically from the memory-mapped store
  and counts mmap vs fallback packs in ``repro.obs``.
"""

import gzip
import json
import pickle

import numpy as np
import pytest

from repro import obs
from repro.core.norms import CpfpFilter
from repro.core.vectorized import ChainArrays
from repro.datasets.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnStore,
    columnar_sidecar,
    load_columnar,
    load_columnar_if_exists,
    open_columns,
    save_columnar,
)
from repro.datasets.io import (
    DatasetCorruptionError,
    dataset_to_dict,
    save_dataset,
)

from conftest import TxFactory
from test_records_dataset import build_small_dataset


@pytest.fixture
def txf():
    return TxFactory("columnar")


@pytest.fixture
def small(txf):
    dataset, *_ = build_small_dataset(txf)
    return dataset


def interchange_bytes(dataset) -> bytes:
    """The canonical gzip-JSON interchange serialisation of a dataset."""
    return json.dumps(
        dataset_to_dict(dataset), separators=(",", ":")
    ).encode("utf-8")


class TestRoundTrip:
    def test_small_dataset_round_trips_byte_identically(self, tmp_path, small):
        path = save_columnar(small, tmp_path / "small.npz")
        loaded = load_columnar(path)
        assert interchange_bytes(loaded) == interchange_bytes(small)

    def test_scenario_dataset_round_trips(self, tmp_path, small_dataset_a):
        path = save_columnar(small_dataset_a, tmp_path / "a.npz")
        loaded = load_columnar(path)
        assert interchange_bytes(loaded) == interchange_bytes(small_dataset_a)

    def test_misbehaving_dataset_round_trips(self, tmp_path, small_dataset_c):
        """Dataset C carries misbehaviour labels, gaps, and CPFP flags."""
        path = save_columnar(small_dataset_c, tmp_path / "c.npz")
        loaded = load_columnar(path)
        assert interchange_bytes(loaded) == interchange_bytes(small_dataset_c)

    def test_gzip_artifact_written_from_decoded_copy_is_identical(
        self, tmp_path, small_dataset_a
    ):
        """Both forms on disk agree: gzip(original) == gzip(decoded)."""
        decoded = load_columnar(
            save_columnar(small_dataset_a, tmp_path / "a.npz")
        )
        original_gz = save_dataset(small_dataset_a, tmp_path / "orig.json.gz")
        decoded_gz = save_dataset(decoded, tmp_path / "dec.json.gz")
        assert original_gz.read_bytes() == decoded_gz.read_bytes()

    def test_writes_are_deterministic(self, tmp_path, small):
        first = save_columnar(small, tmp_path / "one.npz").read_bytes()
        second = save_columnar(small, tmp_path / "two.npz").read_bytes()
        assert first == second

    def test_save_leaves_no_temp_file(self, tmp_path, small):
        save_columnar(small, tmp_path / "small.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["small.npz"]

    def test_loaded_dataset_carries_its_store(self, tmp_path, small):
        path = save_columnar(small, tmp_path / "small.npz")
        loaded = load_columnar(path)
        assert isinstance(loaded.columnar, ColumnStore)
        assert loaded.columnar.matches(loaded)


class TestStore:
    def test_vanilla_numpy_can_open_the_file(self, tmp_path, small):
        path = save_columnar(small, tmp_path / "small.npz")
        with np.load(path, allow_pickle=False) as bundle:
            names = set(bundle.files)
        assert "manifest" in names
        assert "block_height" in names and "rec_fee" in names

    def test_columns_are_memory_mapped(self, tmp_path, small):
        store = open_columns(save_columnar(small, tmp_path / "small.npz"))
        for name in ("block_height", "ctx_fee", "rec_vsize"):
            column = store[name]
            assert isinstance(column, np.memmap)
            assert not column.flags.writeable

    def test_store_pickles_by_path(self, tmp_path, small):
        """Workers receive the path, not the mapped pages."""
        store = open_columns(save_columnar(small, tmp_path / "small.npz"))
        _ = store["block_height"]  # warm the lazy cache pre-pickle
        clone = pickle.loads(pickle.dumps(store))
        assert np.array_equal(clone["block_height"], store["block_height"])

    def test_matches_rejects_a_different_dataset(
        self, tmp_path, small, small_dataset_a
    ):
        store = open_columns(save_columnar(small, tmp_path / "small.npz"))
        assert store.matches(small)
        assert not store.matches(small_dataset_a)

    def test_load_if_exists_absent_returns_none(self, tmp_path):
        assert load_columnar_if_exists(tmp_path / "missing.npz") is None

    def test_sidecar_path_mapping(self, tmp_path):
        gz = tmp_path / "dataset-C-v4-abcd.json.gz"
        assert columnar_sidecar(gz).name == "dataset-C-v4-abcd.npz"


class TestCorruptionTaxonomy:
    """Every torn-file flavour is a typed error, like the gzip reader."""

    @pytest.fixture
    def artifact(self, tmp_path, small):
        return save_columnar(small, tmp_path / "small.npz")

    def test_empty_file(self, artifact):
        artifact.write_bytes(b"")
        with pytest.raises(DatasetCorruptionError):
            load_columnar(artifact)

    def test_garbage_bytes(self, artifact):
        artifact.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(DatasetCorruptionError):
            load_columnar(artifact)

    @pytest.mark.parametrize("keep_fraction", [0.1, 0.5, 0.9, 0.999])
    def test_truncation_at_any_point(self, artifact, keep_fraction):
        pristine = artifact.read_bytes()
        artifact.write_bytes(pristine[: int(len(pristine) * keep_fraction)])
        with pytest.raises(DatasetCorruptionError) as excinfo:
            load_columnar(artifact)
        assert str(artifact) in str(excinfo.value)

    def test_column_truncation_reports_the_byte_offset(self, artifact, small):
        """Cutting inside the last column's data names where it tore."""
        pristine = artifact.read_bytes()
        store = open_columns(artifact)
        _ = store["block_height"]
        # Drop the zip central directory *and* the tail of the data so
        # the store parses headers but the final member's bytes are
        # short.  Offsets in the error must be real file offsets.
        artifact.write_bytes(pristine[: len(pristine) // 2])
        with pytest.raises(DatasetCorruptionError) as excinfo:
            open_columns(artifact)
        # Structured fields match the gzip reader's error surface.
        assert excinfo.value.path == artifact
        assert excinfo.value.reason

    def test_flipped_manifest_version_is_corruption(self, tmp_path, small):
        """A sidecar from a future format must refuse to load."""
        path = save_columnar(small, tmp_path / "small.npz")
        raw = path.read_bytes()
        token = json.dumps(COLUMNAR_FORMAT_VERSION).encode()
        patched = raw.replace(
            b'"columnar_version": ' + token,
            b'"columnar_version": ' + str(COLUMNAR_FORMAT_VERSION + 9).encode(),
            1,
        )
        if patched == raw:  # compact separators in manifest
            patched = raw.replace(
                b'"columnar_version":' + token,
                b'"columnar_version":'
                + str(COLUMNAR_FORMAT_VERSION + 9).encode(),
                1,
            )
        path.write_bytes(patched)
        with pytest.raises(DatasetCorruptionError) as excinfo:
            load_columnar(path)
        assert "version" in str(excinfo.value)

    def test_decode_cross_checks_txids(self, tmp_path, small):
        """Silent payload corruption is caught by txid recomputation."""
        path = save_columnar(small, tmp_path / "small.npz")
        raw = bytearray(path.read_bytes())
        # Flip a byte inside an output-value column's data region: the
        # store maps fine but the decoded transaction no longer hashes
        # to its stored txid (txids commit to outputs, not fees).
        store = open_columns(path)
        values = store["out_value"]
        offset = values.offset  # np.memmap exposes its file offset
        del store, values
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DatasetCorruptionError) as excinfo:
            load_columnar(path)
        assert "mismatch" in str(excinfo.value)


class TestChainArraysZeroCopy:
    @pytest.mark.parametrize(
        "cpfp_filter",
        [CpfpFilter.NONE, CpfpFilter.CHILDREN, CpfpFilter.INVOLVED],
    )
    def test_pack_from_store_is_bit_identical(
        self, tmp_path, small_dataset_c, cpfp_filter
    ):
        store = open_columns(
            save_columnar(small_dataset_c, tmp_path / "c.npz")
        )
        mapped = ChainArrays.from_columnar(
            store, small_dataset_c.block_pools, cpfp_filter
        )
        rebuilt = ChainArrays.from_blocks(
            small_dataset_c.chain, small_dataset_c.block_pools, cpfp_filter
        )
        assert mapped.txids == rebuilt.txids
        assert np.array_equal(mapped.heights, rebuilt.heights)
        assert mapped.block_hashes == rebuilt.block_hashes
        assert np.array_equal(mapped.owner_ids, rebuilt.owner_ids)
        assert mapped.owner_names == rebuilt.owner_names
        assert np.array_equal(mapped.starts, rebuilt.starts)
        assert np.array_equal(mapped.counts, rebuilt.counts)
        assert np.array_equal(mapped.block_index, rebuilt.block_index)
        assert np.array_equal(mapped.vsizes, rebuilt.vsizes)
        # Float columns compare through their bit patterns: identical
        # means *identical*, not approximately equal.
        for name in (
            "fee_rates",
            "observed_rank",
            "predicted_rank",
            "signed_error",
            "abs_error",
        ):
            assert (
                getattr(mapped, name).view(np.int64).tolist()
                == getattr(rebuilt, name).view(np.int64).tolist()
            ), name
        assert mapped.tx_index == rebuilt.tx_index

    def test_from_dataset_prefers_the_attached_store(
        self, tmp_path, small_dataset_c
    ):
        loaded = load_columnar(
            save_columnar(small_dataset_c, tmp_path / "c.npz")
        )
        with obs.tracing(reset=True):
            arrays = ChainArrays.from_dataset(loaded)
            counters = obs.snapshot()["counters"]
        assert counters.get("vectorized.chain_arrays.mmap") == 1
        assert "vectorized.chain_arrays.fallback" not in counters
        rebuilt = ChainArrays.from_blocks(
            small_dataset_c.chain, small_dataset_c.block_pools
        )
        assert arrays.txids == rebuilt.txids

    def test_from_dataset_without_store_counts_a_fallback(
        self, small_dataset_c
    ):
        assert small_dataset_c.columnar is None
        with obs.tracing(reset=True):
            ChainArrays.from_dataset(small_dataset_c)
            snap = obs.snapshot()
        assert snap["counters"].get("vectorized.chain_arrays.fallback") == 1
        assert snap["gauges"].get("vectorized.chain_arrays.fallbacks", 0) >= 1

    def test_stale_store_falls_back_instead_of_serving_wrong_data(
        self, tmp_path, small, small_dataset_c, txf
    ):
        """A store that no longer matches its dataset must not be used."""
        loaded = load_columnar(save_columnar(small, tmp_path / "s.npz"))
        # Graft the stale store onto a different dataset.
        small_dataset_c.columnar = loaded.columnar
        try:
            with obs.tracing(reset=True):
                arrays = ChainArrays.from_dataset(small_dataset_c)
                counters = obs.snapshot()["counters"]
            assert counters.get("vectorized.chain_arrays.fallback") == 1
            rebuilt = ChainArrays.from_blocks(
                small_dataset_c.chain, small_dataset_c.block_pools
            )
            assert arrays.txids == rebuilt.txids
        finally:
            small_dataset_c.columnar = None
