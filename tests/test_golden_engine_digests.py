"""Golden per-block txid digests for the scale-0.1 dataset analogues.

The engine's committed block sequences are pure functions of
(scenario, seed, scale): every RNG is seeded and block content is
deterministic.  These fixtures pin a digest of each dataset's per-block
txid sequence so a future engine edit — scalar or vectorized — cannot
silently reorder or re-select transactions.  The same digest must come
out of:

* the vectorized engine (cold build),
* a cache-warm reload of that build (serialization round-trip),
* the scalar oracle engine (``REPRO_AUDIT_SCALAR=1``, fresh build).

To intentionally update after a deliberate engine change::

    PYTHONPATH=src python -m pytest tests/test_golden_engine_digests.py \
        --regen-golden
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.vectorized import SCALAR_ENV
from repro.datasets.builder import (
    build_dataset,
    build_dataset_a,
    build_dataset_b,
    build_dataset_c,
)
from repro.simulation.scenarios import adversary_scenario

GOLDEN_SCALE = 0.1
GOLDEN_PATH = Path(__file__).parent / "golden" / "engine_digests_scale01.json"


def build_adversary_sandwich(scale: float, cache_dir=None):
    """The adversarial golden lineup: an MEV-sandwiching target pool.

    Pins the zoo's workload hooks (victim/attacker injections) and the
    fast path's compiled-policy fallback alongside the honest analogues,
    so an engine edit cannot silently change adversarial datasets
    either.
    """
    scenario = adversary_scenario("sandwich", scale=scale)
    return build_dataset(scenario, cache_dir=cache_dir)


BUILDERS = {
    "dataset-A": build_dataset_a,
    "dataset-B": build_dataset_b,
    "dataset-C": build_dataset_c,
    "adv-sandwich": build_adversary_sandwich,
}


def block_txid_digest(dataset) -> str:
    """SHA-256 over every block's height, coinbase, and ordered txids."""
    hasher = hashlib.sha256()
    for block in dataset.chain:
        line = "{}:{}:{}\n".format(
            block.height,
            block.coinbase.txid,
            ",".join(tx.txid for tx in block.transactions),
        )
        hasher.update(line.encode("ascii"))
    return hasher.hexdigest()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("digest-cache")


@pytest.fixture(scope="module")
def vectorized_digests(cache_dir, request) -> dict[str, str]:
    digests = {
        name: block_txid_digest(
            builder(scale=GOLDEN_SCALE, cache_dir=cache_dir)
        )
        for name, builder in BUILDERS.items()
    }
    if request.config.getoption("--regen-golden", default=False):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(digests, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return digests


class TestGoldenEngineDigests:
    def test_vectorized_build_matches_fixture(self, vectorized_digests):
        expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert vectorized_digests == expected, (
            "per-block txid digests diverged from tests/golden/"
            "engine_digests_scale01.json (regenerate deliberately "
            "with --regen-golden)"
        )

    def test_cache_warm_reload_matches(self, vectorized_digests, cache_dir):
        """A reload from the on-disk cache must round-trip the digest."""
        for name, builder in BUILDERS.items():
            reloaded = builder(scale=GOLDEN_SCALE, cache_dir=cache_dir)
            assert block_txid_digest(reloaded) == vectorized_digests[name]

    def test_scalar_oracle_build_matches(
        self, vectorized_digests, tmp_path, monkeypatch
    ):
        """The scalar engine must commit the exact same block sequences."""
        monkeypatch.setenv(SCALAR_ENV, "1")
        for name, builder in BUILDERS.items():
            dataset = builder(
                scale=GOLDEN_SCALE, cache_dir=tmp_path / "scalar-cache"
            )
            assert block_txid_digest(dataset) == vectorized_digests[name]
