"""Differential suite: the fast block-production path vs the scalar engine.

`repro.simulation.fast` replays the per-tx engine loop over packed
arrays; the scalar loop (mempool heap + template builders) stays live
behind ``REPRO_AUDIT_SCALAR=1`` as the oracle.  The contract is *byte
identity* of the curated datasets — every observer's serialized
artefact, not just summary statistics — across the paper's three
dataset analogues, including the misbehaving-policy lineup (dataset C:
self-interest acceleration, dark-fee boosts, zero-floor pools, noisy
ordering) and a fault-degraded cell (loss rates + forced stale blocks).

Scale defaults to 0.2 per the engine-vectorization acceptance
criterion; set ``REPRO_ORACLE_SCALE`` to rerun the contract at another
size.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.datasets.io import dataset_to_dict
from repro.faults.schedule import FaultSchedule
from repro.simulation.scenarios import (
    dataset_a_scenario,
    dataset_b_scenario,
    dataset_c_scenario,
)

SCALE = float(os.environ.get("REPRO_ORACLE_SCALE", "0.2"))


def _degraded_faults() -> FaultSchedule:
    return FaultSchedule(
        seed=5,
        tx_loss_rate=0.05,
        pool_loss_rate=0.05,
        stale_block_indexes=(1, 3),
    )


CELLS = {
    "dataset-A": lambda: dataset_a_scenario(scale=SCALE),
    "dataset-A-degraded": lambda: dataset_a_scenario(
        scale=SCALE, faults=_degraded_faults()
    ),
    "dataset-B": lambda: dataset_b_scenario(scale=SCALE),
    "dataset-C-misbehaving": lambda: dataset_c_scenario(scale=SCALE),
}


def _run_cell(factory, monkeypatch, scalar: bool):
    """Run a fresh scenario and serialize every observer's dataset."""
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1" if scalar else "0")
    with obs.tracing(reset=True):
        result = factory().run()
        snapshot = obs.snapshot()
    blobs = {
        name: json.dumps(
            dataset_to_dict(dataset), separators=(",", ":"), sort_keys=True
        )
        for name, dataset in sorted(result.datasets_by_observer.items())
    }
    return blobs, snapshot


def _first_divergence(scalar_blob: str, fast_blob: str) -> str:
    limit = min(len(scalar_blob), len(fast_blob))
    for i in range(limit):
        if scalar_blob[i] != fast_blob[i]:
            lo = max(0, i - 60)
            return (
                f"first diff at char {i}:\n"
                f"  scalar: …{scalar_blob[lo:i + 90]}…\n"
                f"  fast:   …{fast_blob[lo:i + 90]}…"
            )
    return f"length diff: {len(scalar_blob)} vs {len(fast_blob)}"


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_fast_engine_is_byte_identical_to_scalar_oracle(cell, monkeypatch):
    factory = CELLS[cell]
    scalar_blobs, _ = _run_cell(factory, monkeypatch, scalar=True)
    fast_blobs, fast_snapshot = _run_cell(factory, monkeypatch, scalar=False)

    # The comparison must not be vacuous: the fast path has to have
    # actually compiled and driven the pools.
    counters = fast_snapshot["counters"]
    assert counters.get("engine.fast.pools_compiled", 0) > 0
    assert counters.get("engine.fast.pools_fallback", 0) == 0

    assert sorted(scalar_blobs) == sorted(fast_blobs)
    for name in scalar_blobs:
        if scalar_blobs[name] != fast_blobs[name]:
            pytest.fail(
                f"observer {name!r} diverged in cell {cell}:\n"
                + _first_divergence(scalar_blobs[name], fast_blobs[name])
            )


def test_scalar_oracle_does_not_take_the_fast_path(monkeypatch):
    """REPRO_AUDIT_SCALAR=1 must route through the per-tx engine loop."""
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1")
    with obs.tracing(reset=True):
        dataset_a_scenario(scale=0.05).run()
        snapshot = obs.snapshot()
    assert "engine.fast.pools_compiled" not in snapshot["counters"]
