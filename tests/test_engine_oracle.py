"""Differential suite: the fast block-production path vs the scalar engine.

`repro.simulation.fast` replays the per-tx engine loop over packed
arrays; the scalar loop (mempool heap + template builders) stays live
behind ``REPRO_AUDIT_SCALAR=1`` as the oracle.  The contract is *byte
identity* of the curated datasets — every observer's serialized
artefact, not just summary statistics — across the paper's three
dataset analogues, including the misbehaving-policy lineup (dataset C:
self-interest acceleration, dark-fee boosts, zero-floor pools, noisy
ordering) and a fault-degraded cell (loss rates + forced stale blocks).

Scale defaults to 0.2 per the engine-vectorization acceptance
criterion; set ``REPRO_ORACLE_SCALE`` to rerun the contract at another
size.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.datasets.io import dataset_to_dict
from repro.faults.schedule import FaultSchedule
from repro.simulation.scenarios import (
    ADVERSARY_KINDS,
    adversary_scenario,
    dataset_a_scenario,
    dataset_b_scenario,
    dataset_c_scenario,
)

SCALE = float(os.environ.get("REPRO_ORACLE_SCALE", "0.2"))
#: Adversary-zoo cells run at the detection-sweep scale: the zoo has 8
#: lineups and each runs twice per cell, so the full-size SCALE would
#: dominate the suite's wall time without adding coverage.
ADVERSARY_SCALE = min(SCALE, 0.08)
#: Zoo kinds whose *template policy* is unknown to the fast path's
#: policy compiler — the cell must go through (and thereby prove) the
#: compiled-policy-program fallback.  "selfish" keeps honest templates
#: (the attack is a mining-race overlay) and must NOT fall back;
#: "max-boost" composes known policy types and compiles.
FALLBACK_KINDS = frozenset(
    {"fifo", "bucketed", "call-auction", "sandwich", "censor-for-rent"}
)


def _degraded_faults() -> FaultSchedule:
    return FaultSchedule(
        seed=5,
        tx_loss_rate=0.05,
        pool_loss_rate=0.05,
        stale_block_indexes=(1, 3),
    )


CELLS = {
    "dataset-A": lambda: dataset_a_scenario(scale=SCALE),
    "dataset-A-degraded": lambda: dataset_a_scenario(
        scale=SCALE, faults=_degraded_faults()
    ),
    "dataset-B": lambda: dataset_b_scenario(scale=SCALE),
    "dataset-C-misbehaving": lambda: dataset_c_scenario(scale=SCALE),
}


def _run_cell(factory, monkeypatch, scalar: bool):
    """Run a fresh scenario and serialize every observer's dataset."""
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1" if scalar else "0")
    with obs.tracing(reset=True):
        result = factory().run()
        snapshot = obs.snapshot()
    blobs = {
        name: json.dumps(
            dataset_to_dict(dataset), separators=(",", ":"), sort_keys=True
        )
        for name, dataset in sorted(result.datasets_by_observer.items())
    }
    return blobs, snapshot


def _first_divergence(scalar_blob: str, fast_blob: str) -> str:
    limit = min(len(scalar_blob), len(fast_blob))
    for i in range(limit):
        if scalar_blob[i] != fast_blob[i]:
            lo = max(0, i - 60)
            return (
                f"first diff at char {i}:\n"
                f"  scalar: …{scalar_blob[lo:i + 90]}…\n"
                f"  fast:   …{fast_blob[lo:i + 90]}…"
            )
    return f"length diff: {len(scalar_blob)} vs {len(fast_blob)}"


@pytest.mark.parametrize("cell", sorted(CELLS))
def test_fast_engine_is_byte_identical_to_scalar_oracle(cell, monkeypatch):
    factory = CELLS[cell]
    scalar_blobs, _ = _run_cell(factory, monkeypatch, scalar=True)
    fast_blobs, fast_snapshot = _run_cell(factory, monkeypatch, scalar=False)

    # The comparison must not be vacuous: the fast path has to have
    # actually compiled and driven the pools.
    counters = fast_snapshot["counters"]
    assert counters.get("engine.fast.pools_compiled", 0) > 0
    assert counters.get("engine.fast.pools_fallback", 0) == 0

    assert sorted(scalar_blobs) == sorted(fast_blobs)
    for name in scalar_blobs:
        if scalar_blobs[name] != fast_blobs[name]:
            pytest.fail(
                f"observer {name!r} diverged in cell {cell}:\n"
                + _first_divergence(scalar_blobs[name], fast_blobs[name])
            )


@pytest.mark.parametrize(
    "kind", [k for k in ADVERSARY_KINDS if k != "honest"]
)
def test_adversary_lineups_are_byte_identical_across_substrates(
    kind, monkeypatch
):
    """Every zoo adversary must satisfy the same byte-identity contract.

    The zoo template policies are deliberately unknown to the fast
    path's policy compiler, so these cells are the standing proof that
    the compiled-policy-program *fallback* produces datasets byte-
    identical to the scalar engine (the plain cells above prove the
    compiled programs do).
    """
    factory = lambda: adversary_scenario(  # noqa: E731
        kind, seed=11, scale=ADVERSARY_SCALE, intensity=1.0
    )
    scalar_blobs, _ = _run_cell(factory, monkeypatch, scalar=True)
    fast_blobs, fast_snapshot = _run_cell(factory, monkeypatch, scalar=False)

    counters = fast_snapshot["counters"]
    assert counters.get("engine.fast.pools_compiled", 0) > 0
    if kind in FALLBACK_KINDS:
        # The target pool's zoo policy must have exercised the
        # fallback — otherwise this cell silently stopped testing it.
        assert counters.get("engine.fast.pools_fallback", 0) > 0
    else:
        assert counters.get("engine.fast.pools_fallback", 0) == 0
    if kind == "selfish":
        # The withholding attack must actually have orphaned races —
        # an attack that never engages proves nothing.
        assert counters.get("engine.attacks.withheld_races", 0) > 0

    assert sorted(scalar_blobs) == sorted(fast_blobs)
    for name in scalar_blobs:
        if scalar_blobs[name] != fast_blobs[name]:
            pytest.fail(
                f"observer {name!r} diverged for adversary {kind!r}:\n"
                + _first_divergence(scalar_blobs[name], fast_blobs[name])
            )


def test_noisy_policy_runs_are_seed_stable_across_substrates(monkeypatch):
    """Identical seeds => identical datasets, per run and per substrate.

    Every dataset-C pool wraps its policy in ``NoisyPolicy`` whose
    ``JitterSource`` draws from the scenario's seeded RNG registry, so
    re-running the same scenario — in the same substrate or the other
    one — must reproduce the jittered templates exactly.  A regression
    here means some jitter draw escaped the seeded streams.
    """
    factory = lambda: dataset_c_scenario(seed=11, scale=0.04)  # noqa: E731
    runs = [
        _run_cell(factory, monkeypatch, scalar=scalar)[0]
        for scalar in (True, True, False, False)
    ]
    assert runs[0] == runs[1], "scalar run not reproducible under one seed"
    assert runs[2] == runs[3], "fast run not reproducible under one seed"
    assert runs[0] == runs[2], "substrates diverged under one seed"


def test_scalar_oracle_does_not_take_the_fast_path(monkeypatch):
    """REPRO_AUDIT_SCALAR=1 must route through the per-tx engine loop."""
    monkeypatch.setenv("REPRO_AUDIT_SCALAR", "1")
    with obs.tracing(reset=True):
        dataset_a_scenario(scale=0.05).run()
        snapshot = obs.snapshot()
    assert "engine.fast.pools_compiled" not in snapshot["counters"]
