"""Smoke tests: every experiment runner produces a well-formed result.

Cheap experiments run fully; dataset-heavy ones run at a tiny scale via
a shared context.  Shape checks are *reported* but only the structural
contract is asserted here (benchmarks assert the shapes at real scale).
"""

import pytest

from repro.analysis.base import DataContext, ExperimentResult
from repro.analysis.experiments import (
    ALL_RUNNERS,
    EXPERIMENTS,
    EXTENSIONS,
    run_experiment,
    run_experiments,
)

#: Experiments cheap enough for unit-test scale.
CHEAP = ("fig1", "table5", "fig14", "abl_jitter", "abl_selection")


@pytest.fixture(scope="module")
def tiny_ctx():
    return DataContext(scale=0.04)


class TestRegistry:
    def test_paper_artefacts_complete(self):
        expected = {
            "fig1", "table1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "table2", "table3", "table4", "table5",
            "fig9_12", "fig13", "fig14",
        }
        assert set(EXPERIMENTS) == expected

    def test_extensions_registered(self):
        assert {
            "ext_norms",
            "ext_censorship",
            "ext_verification",
            "ext_rbf",
            "abl_selection",
            "abl_epsilon",
            "abl_jitter",
        } <= set(EXTENSIONS)

    def test_no_id_collisions(self):
        assert len(ALL_RUNNERS) == len(EXPERIMENTS) + len(EXTENSIONS)

    def test_unknown_id_raises(self, tiny_ctx):
        with pytest.raises(KeyError):
            run_experiment("fig99", tiny_ctx)


@pytest.mark.parametrize("experiment_id", CHEAP)
def test_cheap_experiment_contract(experiment_id, tiny_ctx):
    result = run_experiment(experiment_id, tiny_ctx)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rendered.strip()
    assert result.checks
    assert result.measured
    report = result.report()
    assert experiment_id in report
    assert "[PASS]" in report or "[FAIL]" in report


def test_run_experiments_shares_context(tiny_ctx):
    results = run_experiments(["fig1", "table5"], tiny_ctx)
    assert [r.experiment_id for r in results] == ["fig1", "table5"]


def test_dataset_backed_experiments_run_at_tiny_scale(tiny_ctx):
    # A representative dataset-heavy artefact per dataset.
    for experiment_id in ("fig5", "fig7"):
        result = run_experiment(experiment_id, tiny_ctx)
        assert result.rendered
        # Structural sanity only; shape checks are scale-sensitive.
        assert all(isinstance(c.passed, bool) for c in result.checks)
