"""Unit tests for dataset records and the Dataset container."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.datasets.dataset import Dataset
from repro.datasets.records import (
    LABEL_SCAM,
    LABEL_SELF_INTEREST,
    BlockRecord,
    TxRecord,
    label_value,
    make_label,
)
from repro.mempool.snapshots import SnapshotStore

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("dataset")


class TestLabels:
    def test_make_and_parse(self):
        label = make_label(LABEL_SELF_INTEREST, "F2Pool")
        assert label == "self-interest:F2Pool"
        assert label_value(label, LABEL_SELF_INTEREST) == "F2Pool"
        assert label_value(label, LABEL_SCAM) is None

    def test_bare_label(self):
        assert make_label(LABEL_SCAM) == "scam"
        assert label_value("scam", LABEL_SCAM) == ""


class TestTxRecord:
    def _record(self, **kwargs):
        defaults = dict(
            txid="t",
            broadcast_time=0.0,
            observer_arrival=1.0,
            fee=500,
            vsize=250,
            commit_height=3,
            commit_position=0,
            labels=frozenset({"self-interest:F2Pool", "scam"}),
        )
        defaults.update(kwargs)
        return TxRecord(**defaults)

    def test_fee_rate(self):
        assert self._record().fee_rate == pytest.approx(2.0)

    def test_committed_and_observed_flags(self):
        assert self._record().committed
        assert not self._record(commit_height=None).committed
        assert not self._record(observer_arrival=None).observed

    def test_has_label(self):
        record = self._record()
        assert record.has_label(LABEL_SELF_INTEREST)
        assert record.has_label(LABEL_SELF_INTEREST, "F2Pool")
        assert not record.has_label(LABEL_SELF_INTEREST, "ViaBTC")
        assert record.has_label(LABEL_SCAM)

    def test_label_values(self):
        assert self._record().label_values(LABEL_SELF_INTEREST) == ["F2Pool"]


class TestBlockRecord:
    def test_fee_share(self):
        record = BlockRecord(
            height=0,
            block_hash="h",
            timestamp=0.0,
            pool="P",
            tx_count=2,
            vsize=1000,
            total_fees=250,
            subsidy=750,
        )
        assert record.fee_share_of_revenue == pytest.approx(0.25)
        assert not record.is_empty


def build_small_dataset(txf):
    wallet_tx = txf.tx(to_address="pool-wallet", fee=300, vsize=100, nonce=1)
    plain_tx = txf.tx(fee=900, vsize=100, nonce=2)
    scam_tx = txf.tx(fee=400, vsize=100, nonce=3)
    chain = Blockchain()
    block0 = make_test_block([wallet_tx, plain_tx], height=0, timestamp=10.0)
    chain.append(block0)
    block1 = make_test_block(
        [scam_tx], height=1, prev_hash=chain.tip_hash, timestamp=20.0
    )
    chain.append(block1)
    records = {
        wallet_tx.txid: TxRecord(
            wallet_tx.txid, 0.0, 0.5, 300, 100, 0, 0,
            frozenset({make_label(LABEL_SELF_INTEREST, "P")}),
        ),
        plain_tx.txid: TxRecord(plain_tx.txid, 1.0, 1.5, 900, 100, 0, 1),
        scam_tx.txid: TxRecord(
            scam_tx.txid, 2.0, None, 400, 100, 1, 0, frozenset({LABEL_SCAM})
        ),
    }
    dataset = Dataset(
        name="small",
        chain=chain,
        snapshots=SnapshotStore([]),
        tx_records=records,
        block_pools={0: "P", 1: "Q"},
        pool_wallets={"P": frozenset({"pool-wallet"})},
    )
    return dataset, wallet_tx, plain_tx, scam_tx


class TestDataset:
    def test_summary_counts(self, txf):
        dataset, *_ = build_small_dataset(txf)
        summary = dataset.summary()
        assert summary["blocks"] == 2
        assert summary["transactions_issued"] == 3
        assert summary["transactions_committed"] == 3

    def test_blocks_of_pool(self, txf):
        dataset, *_ = build_small_dataset(txf)
        assert [b.height for b in dataset.blocks_of("P")] == [0]
        assert dataset.blocks_of("missing") == []

    def test_hash_rates(self, txf):
        dataset, *_ = build_small_dataset(txf)
        assert dataset.hash_rate_of("P") == pytest.approx(0.5)
        assert dataset.hash_rate_of("nobody") == 0.0

    def test_commit_heights_and_fee_rates(self, txf):
        dataset, wallet_tx, *_ = build_small_dataset(txf)
        assert dataset.commit_heights()[wallet_tx.txid] == 0
        assert dataset.fee_rates()[wallet_tx.txid] == pytest.approx(3.0)

    def test_commit_pools(self, txf):
        dataset, wallet_tx, _, scam_tx = build_small_dataset(txf)
        pools = dataset.commit_pools()
        assert pools[wallet_tx.txid] == "P"
        assert pools[scam_tx.txid] == "Q"

    def test_labelled_sets(self, txf):
        dataset, wallet_tx, _, scam_tx = build_small_dataset(txf)
        assert dataset.self_interest_txids("P") == {wallet_tx.txid}
        assert dataset.self_interest_txids("Q") == frozenset()
        assert dataset.scam_txids() == {scam_tx.txid}

    def test_inferred_self_interest(self, txf):
        dataset, wallet_tx, *_ = build_small_dataset(txf)
        inferred = dataset.inferred_self_interest_txids("P")
        assert wallet_tx.txid in inferred
        assert dataset.inferred_self_interest_txids("no-wallets") == frozenset()

    def test_c_block_miners(self, txf):
        dataset, wallet_tx, _, scam_tx = build_small_dataset(txf)
        assert dataset.c_block_miners([wallet_tx.txid, scam_tx.txid]) == ["P", "Q"]
        # Blocks count once even with multiple c-txs.
        assert dataset.c_block_miners(
            [wallet_tx.txid, wallet_tx.txid]
        ) == ["P"]

    def test_observed_committed_records(self, txf):
        dataset, *_ = build_small_dataset(txf)
        rows = dataset.observed_committed_records()
        assert len(rows) == 2  # scam tx was never observed

    def test_block_records(self, txf):
        dataset, *_ = build_small_dataset(txf)
        records = dataset.block_records()
        assert [r.pool for r in records] == ["P", "Q"]
        assert records[0].total_fees == 1200

    def test_block_times(self, txf):
        dataset, *_ = build_small_dataset(txf)
        assert dataset.block_times().tolist() == [10.0, 20.0]
