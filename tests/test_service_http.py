"""HTTP-level service tests: ingest protocol, backpressure, deadlines.

Every test runs a real :class:`ThreadingHTTPServer` on an ephemeral
port and talks to it with raw ``http.client`` (not the retrying
:class:`AuditClient`) wherever the *un*-retried protocol answer is the
thing under test — 409 gaps, 503 backpressure, Retry-After headers.
"""

import http.client
import json
import threading

import pytest

from repro.core.audit import Auditor, stream_blocks
from repro.faults import FaultSchedule, degrade_dataset
from repro.service.client import AuditClient
from repro.service.server import (
    AuditService,
    make_http_server,
    pool_answer,
    tx_answer,
)


def _raw(host, port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        data = response.read()
        return (
            response.status,
            json.loads(data) if data else {},
            dict(response.getheaders()),
        )
    finally:
        connection.close()


@pytest.fixture()
def live_service(small_dataset_a, tmp_path):
    """A recovered service + HTTP server, torn down after the test."""
    service = AuditService(
        small_dataset_a,
        wal_dir=tmp_path,
        queue_size=4,
        checkpoint_every=100,
        fsync=False,
    )
    service.recover()
    server = make_http_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield service, host, port
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


class TestIngestProtocol:
    def test_in_order_stream_applies_everything(
        self, live_service, small_dataset_a
    ):
        service, host, port = live_service
        client = AuditClient(host, port)
        feed = list(stream_blocks(small_dataset_a))
        assert client.stream(feed) == len(feed)
        client.wait_applied(feed[-1][0])
        assert service.applied_height == small_dataset_a.chain.height

    def test_duplicate_acks_200(self, live_service, small_dataset_a):
        _, host, port = live_service
        client = AuditClient(host, port)
        feed = list(stream_blocks(small_dataset_a))
        client.stream(feed[:3])
        from repro.service.wal import encode_entry

        height, pool, block = feed[0]
        status, payload, _ = _raw(
            host, port, "POST", "/ingest", encode_entry(height, pool, block)
        )
        assert status == 200
        assert payload["status"] == "duplicate"

    def test_gap_answers_409_with_expected_height(
        self, live_service, small_dataset_a
    ):
        _, host, port = live_service
        from repro.service.wal import encode_entry

        feed = list(stream_blocks(small_dataset_a))
        height, pool, block = feed[5]  # skip 0..4
        status, payload, _ = _raw(
            host, port, "POST", "/ingest", encode_entry(height, pool, block)
        )
        assert status == 409
        assert payload == {"status": "gap", "expected_height": feed[0][0]}

    def test_full_queue_answers_503_with_retry_after(
        self, live_service, small_dataset_a
    ):
        service, host, port = live_service
        from repro.service.wal import encode_entry

        service.pause_applier()  # stalled consumer: nothing drains
        feed = list(stream_blocks(small_dataset_a))
        statuses = []
        for height, pool, block in feed[: service.queue_capacity + 2]:
            status, payload, headers = _raw(
                host, port, "POST", "/ingest", encode_entry(height, pool, block)
            )
            statuses.append(status)
        # The queue (size 4) fills; the overflow is *rejected*, loudly.
        # (The paused applier may hold one dequeued entry in flight, so
        # either `capacity` or `capacity + 1` blocks get accepted.)
        assert statuses.count(202) in (
            service.queue_capacity,
            service.queue_capacity + 1,
        )
        assert statuses[-1] == 503
        assert payload["status"] == "overloaded"
        assert payload["retry_after"] > 0
        assert "Retry-After" in headers

        # Backpressure releases when the consumer drains: the client's
        # retry loop finishes the stream with zero loss.
        service.resume_applier()
        client = AuditClient(host, port)
        client.stream(feed)
        client.wait_applied(feed[-1][0])
        assert service.applied_height == feed[-1][0]

    def test_malformed_ingest_answers_400(self, live_service):
        _, host, port = live_service
        status, _, _ = _raw(host, port, "POST", "/ingest", [1, 2, 3])
        assert status == 400

    def test_recovering_service_answers_503(self, small_dataset_a, tmp_path):
        service = AuditService(small_dataset_a, wal_dir=tmp_path, fsync=False)
        # recover() not called: the service must refuse, not misapply.
        server = make_http_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            status, payload, _ = _raw(host, port, "GET", "/readyz")
            assert status == 503
            from repro.service.wal import encode_entry

            height, pool, block = next(iter(stream_blocks(small_dataset_a)))
            status, payload, _ = _raw(
                host, port, "POST", "/ingest",
                encode_entry(height, pool, block),
            )
            assert status == 503
            assert payload["status"] == "recovering"
        finally:
            server.shutdown()
            server.server_close()


class TestQueries:
    def test_tx_and_pool_answers_match_direct_evaluation(
        self, live_service, small_dataset_a
    ):
        service, host, port = live_service
        client = AuditClient(host, port)
        feed = list(stream_blocks(small_dataset_a))
        client.stream(feed)
        client.wait_applied(feed[-1][0])

        txid = next(
            t
            for t, r in small_dataset_a.tx_records.items()
            if r.commit_height is not None
        )
        got = client.query_tx(txid)
        want = json.loads(json.dumps(tx_answer(service.auditor, txid)))
        assert got["answer"] == want

        pool = small_dataset_a.hash_rates()[0].pool
        got = client.query_pool(pool)
        want = json.loads(json.dumps(pool_answer(service.auditor, pool)))
        assert got["answer"] == want

    def test_unknown_txid_is_a_valid_answer(self, live_service):
        _, host, port = live_service
        status, payload, _ = _raw(host, port, "GET", "/query/tx/no-such-tx")
        assert status == 200
        assert payload["answer"] == {
            "txid": "no-such-tx",
            "observed": False,
            "committed": False,
        }

    def test_unknown_route_404(self, live_service):
        _, host, port = live_service
        for method, path in [("GET", "/nope"), ("POST", "/nope")]:
            status, _, _ = _raw(host, port, method, path)
            assert status == 404

    def test_health_status_and_obs_endpoints(self, live_service):
        _, host, port = live_service
        assert _raw(host, port, "GET", "/healthz")[0] == 200
        assert _raw(host, port, "GET", "/readyz")[0] == 200
        status, payload, _ = _raw(host, port, "GET", "/status")
        assert status == 200
        assert payload["ready"] is True
        status, payload, _ = _raw(host, port, "GET", "/obs")
        assert status == 200
        assert "obs" in payload

    def test_deadline_exceeded_answers_503(self, live_service):
        service, host, port = live_service
        with service._state_lock:  # a stuck fold holds the lock
            status, payload, headers = _raw(
                host,
                port,
                "GET",
                "/audit",
                headers={"X-Deadline-Seconds": "0.05"},
            )
        assert status == 503
        assert payload["status"] == "deadline_exceeded"
        assert "Retry-After" in headers


class TestAnnotations:
    def test_every_answer_carries_quality_and_progress(
        self, live_service, small_dataset_a
    ):
        _, host, port = live_service
        client = AuditClient(host, port)
        feed = list(stream_blocks(small_dataset_a))
        client.stream(feed[:5])
        client.wait_applied(feed[4][0])
        for payload in (
            client.query_tx("whatever"),
            client.query_pool(small_dataset_a.hash_rates()[0].pool),
            client.audit(),
        ):
            annotation = payload["annotation"]
            assert annotation["quality"]["degraded"] is False
            assert annotation["stream"]["applied_height"] == feed[4][0]
            assert annotation["stream"]["blocks_applied"] == 5

    def test_degraded_data_is_flagged_on_every_answer(
        self, small_dataset_a, tmp_path
    ):
        """Gappy observer data must never yield unqualified answers."""
        degraded = degrade_dataset(
            small_dataset_a, FaultSchedule(seed=9, tx_loss_rate=0.25)
        )
        quality = Auditor(degraded).quality_report()
        assert quality.degraded

        service = AuditService(degraded, wal_dir=tmp_path, fsync=False)
        service.recover()
        server = make_http_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            client = AuditClient(host, port)
            feed = list(stream_blocks(degraded))
            client.stream(feed)
            client.wait_applied(feed[-1][0])
            for payload in (
                client.query_tx(next(iter(degraded.tx_records))),
                client.query_pool(degraded.hash_rates()[0].pool),
                client.audit(),
            ):
                annotation = payload["annotation"]
                assert annotation["quality"]["degraded"] is True
                assert annotation["quality"] == json.loads(
                    json.dumps(quality.summary())
                )
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
