"""Unit tests for the workload generator."""

import numpy as np
import pytest

from repro.datasets.records import (
    LABEL_ACCELERATED,
    LABEL_LOW_FEE,
    LABEL_SCAM,
    LABEL_SELF_INTEREST,
    LABEL_ZERO_FEE,
)
from repro.simulation.rng import RngStreams
from repro.simulation.workload import (
    DemandModel,
    FeeModel,
    InjectionConfig,
    SizeModel,
    WorkloadConfig,
    WorkloadGenerator,
    backlog_proxy,
)


def make_config(duration=3600.0, **injection_kwargs):
    return WorkloadConfig(
        duration=duration,
        capacity_vsize_per_second=1_000_000 / 600.0,
        injections=InjectionConfig(**injection_kwargs),
        pool_wallets={"P": ["wallet-p"]},
    )


def generate(config, seed=1):
    return WorkloadGenerator(config, RngStreams(seed)).generate()


class TestDemandModel:
    def test_series_covers_duration(self):
        model = DemandModel(bin_seconds=600.0)
        starts, ratios = model.intensity_series(3600.0, np.random.default_rng(0))
        assert len(starts) == 6
        assert ratios.min() >= model.min_ratio
        assert ratios.max() <= model.max_ratio

    def test_long_run_mean_near_base(self):
        model = DemandModel(base_ratio=1.0, diurnal_amplitude=0.0)
        _, ratios = model.intensity_series(600.0 * 20000, np.random.default_rng(0))
        assert float(ratios.mean()) == pytest.approx(1.0, rel=0.1)


class TestBacklogProxy:
    def test_fluid_mode_grows_when_overloaded(self):
        ratios = np.full(10, 2.0)
        backlog = backlog_proxy(ratios, bin_seconds=600.0)
        assert backlog[-1] > backlog[0] > 0.0

    def test_fluid_mode_drains_when_underloaded(self):
        ratios = np.concatenate([np.full(5, 3.0), np.full(20, 0.2)])
        backlog = backlog_proxy(ratios, bin_seconds=600.0)
        assert backlog[-1] == 0.0

    def test_block_aware_mode_reacts_to_slow_blocks(self):
        ratios = np.full(10, 1.0)
        # No blocks at all in the window: backlog builds steadily.
        no_blocks = backlog_proxy(
            ratios, bin_seconds=600.0, block_times=np.asarray([])
        )
        # A block every 600 s keeps the backlog near zero.
        steady = backlog_proxy(
            ratios,
            bin_seconds=600.0,
            block_times=np.arange(1, 11) * 600.0 - 1.0,
        )
        assert no_blocks[-1] > steady[-1]

    def test_never_negative(self):
        ratios = np.full(10, 0.01)
        backlog = backlog_proxy(
            ratios, bin_seconds=600.0, block_times=np.arange(10) * 60.0
        )
        assert (backlog >= 0.0).all()


class TestFeeModel:
    def test_backlog_raises_fees(self):
        model = FeeModel(insensitive_fraction=0.0)
        rng = np.random.default_rng(0)
        calm = model.draw(4000, np.zeros(4000), rng)
        jammed = model.draw(4000, np.full(4000, 10.0), rng)
        assert float(np.median(jammed)) > 3.0 * float(np.median(calm))

    def test_insensitive_users_ignore_backlog(self):
        model = FeeModel(insensitive_fraction=1.0)
        rng = np.random.default_rng(0)
        calm = model.draw(4000, np.zeros(4000), rng)
        jammed = model.draw(4000, np.full(4000, 10.0), rng)
        assert float(np.median(jammed)) == pytest.approx(
            float(np.median(calm)), rel=0.2
        )

    def test_bounds_respected(self):
        model = FeeModel(min_sat_vb=1.0, max_sat_vb=100.0)
        rates = model.draw(
            1000, np.full(1000, 50.0), np.random.default_rng(0)
        )
        assert rates.min() >= 1.0 and rates.max() <= 100.0


class TestSizeModel:
    def test_bounds(self):
        model = SizeModel(min_vsize=110, max_vsize=5000)
        sizes = model.draw(1000, np.random.default_rng(0))
        assert sizes.min() >= 110 and sizes.max() <= 5000
        assert sizes.dtype == np.int64


class TestGenerator:
    def test_plan_sorted_by_time(self):
        plan = generate(make_config())
        times = [p.broadcast_time for p in plan]
        assert times == sorted(times)

    def test_deterministic_for_seed(self):
        a = generate(make_config(), seed=5)
        b = generate(make_config(), seed=5)
        assert [p.tx.txid for p in a] == [p.tx.txid for p in b]

    def test_different_seeds_differ(self):
        a = generate(make_config(), seed=5)
        b = generate(make_config(), seed=6)
        assert [p.tx.txid for p in a] != [p.tx.txid for p in b]

    def test_txids_unique(self):
        plan = generate(make_config())
        txids = [p.tx.txid for p in plan]
        assert len(txids) == len(set(txids))

    def test_cpfp_children_reference_parents(self):
        plan = generate(make_config())
        by_txid = {p.tx.txid for p in plan}
        children = [
            p for p in plan if p.tx.parent_txids & by_txid
        ]
        assert children  # chaining happens
        for child in children:
            for parent in child.tx.parent_txids & by_txid:
                parent_time = next(
                    q.broadcast_time for q in plan if q.tx.txid == parent
                )
                assert child.broadcast_time > parent_time

    def test_self_interest_injection(self):
        plan = generate(make_config(self_interest_counts={"P": 5}))
        tagged = [p for p in plan if f"{LABEL_SELF_INTEREST}:P" in p.labels]
        assert len(tagged) == 5
        assert all(
            any(out.address == "wallet-p" for out in p.tx.outputs) for p in tagged
        )

    def test_scam_injection_within_window(self):
        plan = generate(
            make_config(scam_count=7, scam_window=(1000.0, 2000.0))
        )
        scams = [p for p in plan if LABEL_SCAM in p.labels]
        assert len(scams) == 7
        assert all(1000.0 <= p.broadcast_time <= 2000.0 for p in scams)
        # All scam payments hit the same wallet.
        wallets = {p.tx.outputs[0].address for p in scams}
        assert len(wallets) == 1

    def test_accelerated_injection(self):
        plan = generate(make_config(accelerated_counts={"svc": 4}))
        accelerated = [p for p in plan if p.accelerate_via == "svc"]
        assert len(accelerated) == 4
        assert all(f"{LABEL_ACCELERATED}:svc" in p.labels for p in accelerated)
        # Dark-fee transactions look cheap on-chain.
        assert all(p.tx.fee_rate < 10.0 for p in accelerated)

    def test_low_and_zero_fee_probes(self):
        plan = generate(make_config(low_fee_count=6, zero_fee_count=4))
        low = [p for p in plan if LABEL_LOW_FEE in p.labels]
        zero = [p for p in plan if LABEL_ZERO_FEE in p.labels]
        assert len(low) == 6 and len(zero) == 4
        assert all(p.tx.fee_rate < 1.0 for p in low)
        assert all(p.tx.fee == 0 for p in zero)

    def test_unknown_pool_wallet_skipped(self):
        config = make_config(self_interest_counts={"missing-pool": 5})
        plan = generate(config)
        assert not [p for p in plan if p.labels]
