"""Unit tests for the dark-fee (SPPE-threshold) detector."""

import numpy as np
import pytest

from repro.core.acceleration import (
    TABLE4_THRESHOLDS,
    candidate_txids,
    detection_sweep,
    score_detector,
)

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("darkfee")


def boosted_block(txf, height=0, prev_hash="0" * 64):
    """A block whose first tx is a cheap interloper at the very top."""
    cheap = txf.tx(fee=10, vsize=100, nonce=height * 100 + 1)
    rich = [
        txf.tx(fee=(20 - i) * 100, vsize=100, nonce=height * 100 + 2 + i)
        for i in range(19)
    ]
    block = make_test_block([cheap] + rich, height=height, prev_hash=prev_hash, timestamp=float(height))
    return block, cheap


class TestCandidates:
    def test_thresholding(self):
        errors = {"a": 100.0, "b": 95.0, "c": 10.0, "d": -50.0}
        assert set(candidate_txids(errors, 99.0)) == {"a"}
        assert set(candidate_txids(errors, 90.0)) == {"a", "b"}
        assert set(candidate_txids(errors, 1.0)) == {"a", "b", "c"}


class TestDetectionSweep:
    def test_flags_boosted_transaction(self, txf):
        block, cheap = boosted_block(txf)
        report = detection_sweep(
            [block],
            is_accelerated=lambda txid: txid == cheap.txid,
            thresholds=(99.0, 50.0),
            rng=np.random.default_rng(0),
            control_sample_size=5,
        )
        at99 = report.rows[0]
        assert at99.candidate_count == 1
        assert at99.accelerated_count == 1
        assert at99.precision == 1.0

    def test_honest_block_produces_no_high_sppe_candidates(self, txf):
        txs = [txf.tx(fee=(30 - i) * 100, vsize=100, nonce=i) for i in range(20)]
        block = make_test_block(txs)
        report = detection_sweep(
            [block],
            is_accelerated=lambda txid: False,
            thresholds=(99.0,),
            rng=np.random.default_rng(0),
        )
        assert report.rows[0].candidate_count == 0
        assert report.rows[0].precision != report.rows[0].precision  # NaN

    def test_control_sample(self, txf):
        block, cheap = boosted_block(txf)
        report = detection_sweep(
            [block],
            is_accelerated=lambda txid: False,
            rng=np.random.default_rng(0),
            control_sample_size=10,
        )
        assert report.control_sample_size == 10
        assert report.control_accelerated == 0
        assert report.control_rate == 0.0

    def test_default_thresholds_are_paper_rows(self):
        assert TABLE4_THRESHOLDS == (100.0, 99.0, 90.0, 50.0, 1.0)


class TestScoreDetector:
    def test_precision_and_recall(self, txf):
        block, cheap = boosted_block(txf)
        scores = score_detector(
            [block],
            accelerated_truth=frozenset({cheap.txid}),
            thresholds=(99.0, 1.0),
        )
        by_threshold = {s.threshold: s for s in scores}
        assert by_threshold[99.0].precision == 1.0
        assert by_threshold[99.0].recall == 1.0
        # At the loose threshold precision collapses (jittered rich txs).
        assert by_threshold[1.0].recall == 1.0

    def test_uncommitted_truth_ignored(self, txf):
        block, cheap = boosted_block(txf)
        scores = score_detector(
            [block],
            accelerated_truth=frozenset({cheap.txid, "never-committed"}),
            thresholds=(99.0,),
        )
        assert scores[0].false_negatives == 0

    def test_empty_truth(self, txf):
        block, _ = boosted_block(txf)
        scores = score_detector([block], accelerated_truth=frozenset(), thresholds=(99.0,))
        assert scores[0].true_positives == 0
        assert scores[0].recall != scores[0].recall  # NaN
