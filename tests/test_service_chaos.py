"""Chaos harness: ``kill -9`` the audit service until it proves itself.

The tentpole acceptance test of ISSUE 6.  A pytest supervisor runs the
real ``repro-audit serve`` process on a fault-degraded scale-0.2
dataset and, while a retrying client replays the chain:

* ``SIGKILL``s and restarts the server at least 5 times at arbitrary
  points (mid-append, mid-fold, mid-compaction — wherever the kill
  lands);
* stalls the applier (slow-consumer injection) so kills also land with
  a non-empty ingest queue;
* finally compares every per-txid, per-pool, and whole-audit answer
  against the batch oracle — the answers must be *equal*, not close,
  and must carry the degraded-quality annotation.

A final gratuitous kill + replay of the whole feed then pins WAL-replay
idempotence: re-delivering every block changes nothing.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.audit import Auditor, stream_blocks
from repro.datasets.builder import build_dataset_a
from repro.datasets.io import load_dataset, save_dataset
from repro.faults import FaultSchedule, degrade_dataset
from repro.service.client import AuditClient, ServiceUnavailable
from repro.service.server import audit_answer, pool_answer, tx_answer

SCALE = 0.2
KILL_CYCLES = 5


@pytest.fixture(scope="module")
def chaos_env(tmp_path_factory):
    """Degraded dataset on disk + its batch oracle, shared per module."""
    root = tmp_path_factory.mktemp("chaos")
    clean = build_dataset_a(scale=SCALE)
    degraded = degrade_dataset(
        clean, FaultSchedule(seed=77, tx_loss_rate=0.15)
    )
    dataset_file = save_dataset(degraded, root / "degraded-a.json.gz")
    # The oracle audits the *loaded-back* dataset — the exact bytes the
    # service process will see.
    dataset = load_dataset(dataset_file)
    assert Auditor(dataset).quality_report().degraded
    return root, dataset_file, dataset


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class ServeProcess:
    """Supervisor handle for one ``repro-audit serve`` subprocess."""

    def __init__(self, dataset_file: Path, wal_dir: Path, port: int) -> None:
        self.dataset_file = dataset_file
        self.wal_dir = wal_dir
        self.port = port
        self.process = None
        self.restarts = 0

    def start(self) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--dataset",
                str(self.dataset_file),
                "--wal-dir",
                str(self.wal_dir),
                "--port",
                str(self.port),
                "--queue-size",
                "8",
                "--checkpoint-every",
                "16",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def kill9(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait()

    def restart(self) -> None:
        self.kill9()
        self.start()
        self.restarts += 1

    def stop(self) -> None:
        if self.process and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait()


@pytest.fixture()
def supervisor(chaos_env, tmp_path):
    _, dataset_file, _ = chaos_env
    proc = ServeProcess(dataset_file, tmp_path / "wal", _free_port())
    proc.start()
    try:
        yield proc
    finally:
        proc.stop()


def _assert_answers_match_oracle(client, dataset, sample=40):
    """Service answers == batch-oracle answers, JSON-canonically."""
    oracle = Auditor(dataset)
    rng = random.Random(4)
    committed = sorted(
        t
        for t, r in dataset.tx_records.items()
        if r.commit_height is not None
    )
    observed_only = sorted(
        t
        for t, r in dataset.tx_records.items()
        if r.commit_height is None
    )
    txids = rng.sample(committed, min(sample, len(committed)))
    txids += observed_only[:3] + ["never-seen-txid"]
    for txid in txids:
        got = client.query_tx(txid)
        assert got["answer"] == json.loads(
            json.dumps(tx_answer(oracle, txid))
        ), f"tx answer diverged for {txid}"
        assert got["annotation"]["quality"]["degraded"] is True

    for estimate in dataset.hash_rates():
        got = client.query_pool(estimate.pool)
        assert got["answer"] == json.loads(
            json.dumps(pool_answer(oracle, estimate.pool))
        ), f"pool answer diverged for {estimate.pool}"
        assert got["annotation"]["quality"]["degraded"] is True

    got = client.audit()
    assert got["answer"] == json.loads(json.dumps(audit_answer(oracle)))
    assert got["annotation"]["quality"]["degraded"] is True


class TestChaos:
    def test_killed_restarted_service_converges_to_batch_oracle(
        self, chaos_env, supervisor
    ):
        _, _, dataset = chaos_env
        feed = list(stream_blocks(dataset))
        final_height = feed[-1][0]
        client = AuditClient("127.0.0.1", supervisor.port, max_retries=80)
        client.wait_ready()

        stream_error = []

        def pump():
            """client.stream with a trickle delay so the chaos cycles
            land *mid-stream*, not after a too-fast replay finished."""
            try:
                by_height = {h: (h, p, b) for h, p, b in feed}
                cursor, last = feed[0][0], feed[-1][0]
                while cursor <= last:
                    height, pool, block = by_height[cursor]
                    answer = client.ingest(height, pool, block)
                    if answer.get("status") == "gap":
                        cursor = max(answer["expected_height"], feed[0][0])
                        continue
                    cursor += 1
                    time.sleep(0.01)
            except Exception as exc:  # surfaced below, not swallowed
                stream_error.append(exc)

        pumper = threading.Thread(target=pump)
        pumper.start()

        rng = random.Random(1337)
        control = AuditClient("127.0.0.1", supervisor.port, max_retries=5)
        for cycle in range(KILL_CYCLES):
            time.sleep(rng.uniform(0.15, 0.6))
            if rng.random() < 0.5:
                # Slow-consumer injection: stall the applier so the
                # queue is non-empty when the kill lands.
                try:
                    control.request("POST", "/control/pause")
                    time.sleep(rng.uniform(0.05, 0.2))
                except ServiceUnavailable:  # pragma: no cover - timing
                    pass
            supervisor.restart()

        pumper.join(timeout=180)
        assert not pumper.is_alive(), "stream never completed"
        if stream_error:
            raise stream_error[0]
        assert supervisor.restarts >= KILL_CYCLES

        client.wait_applied(final_height, deadline_seconds=120)
        _assert_answers_match_oracle(client, dataset)

    def test_replay_after_final_kill_is_idempotent(
        self, chaos_env, supervisor
    ):
        """Full re-delivery of the feed changes no answer (WAL replay)."""
        _, _, dataset = chaos_env
        feed = list(stream_blocks(dataset))
        client = AuditClient("127.0.0.1", supervisor.port)
        client.wait_ready()
        client.stream(feed)
        client.wait_applied(feed[-1][0], deadline_seconds=120)
        before = client.audit()

        supervisor.restart()
        client.wait_ready()
        # Re-deliver everything: every block is a duplicate or a gap
        # resync; none may fold twice.
        client.stream(feed)
        status = client.wait_applied(feed[-1][0], deadline_seconds=120)
        assert status["applied_height"] == feed[-1][0]
        after = client.audit()
        assert after["answer"] == before["answer"]
        _assert_answers_match_oracle(client, dataset, sample=10)
