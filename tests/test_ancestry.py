"""Unit tests for ancestry tracking and CPFP detection."""

import pytest

from repro.mempool.ancestry import (
    AncestryIndex,
    cpfp_fraction,
    cpfp_involved_txids,
    dependency_closure,
    find_cpfp_parent_txids,
    find_cpfp_txids,
)

from conftest import TxFactory, make_test_block


@pytest.fixture
def txf():
    return TxFactory("ancestry")


def chain_of_three(txf):
    a = txf.tx(nonce=1)
    b = txf.tx(parents=(a.txid,), nonce=2)
    c = txf.tx(parents=(b.txid,), nonce=3)
    return a, b, c


class TestAncestryIndex:
    def test_parents_and_children(self, txf):
        a, b, c = chain_of_three(txf)
        index = AncestryIndex([a, b, c])
        assert index.parents_of(b.txid) == {a.txid}
        assert index.children_of(a.txid) == {b.txid}
        assert index.parents_of(a.txid) == frozenset()

    def test_out_of_set_parents_ignored(self, txf):
        orphan = txf.tx(parents=("ff" * 32,), nonce=9)
        index = AncestryIndex([orphan])
        assert index.parents_of(orphan.txid) == frozenset()

    def test_transitive_ancestors(self, txf):
        a, b, c = chain_of_three(txf)
        index = AncestryIndex([a, b, c])
        assert index.ancestors_of(c.txid) == {a.txid, b.txid}
        assert index.descendants_of(a.txid) == {b.txid, c.txid}

    def test_remove_breaks_links(self, txf):
        a, b, c = chain_of_three(txf)
        index = AncestryIndex([a, b, c])
        index.remove(b.txid)
        assert index.ancestors_of(c.txid) == frozenset()

    def test_package_stats(self, txf):
        a = txf.tx(fee=100, vsize=200, nonce=1)
        b = txf.tx(fee=900, vsize=100, parents=(a.txid,), nonce=2)
        index = AncestryIndex([a, b])
        stats = index.package_stats(b.txid)
        assert stats.package_fee == 1000
        assert stats.package_vsize == 300
        assert stats.package_fee_rate == pytest.approx(1000 / 300)
        assert stats.ancestor_count == 1

    def test_singleton_package(self, txf):
        tx = txf.tx(fee=100, vsize=200)
        index = AncestryIndex([tx])
        stats = index.package_stats(tx.txid)
        assert stats.package_fee == 100
        assert stats.ancestor_count == 0

    def test_topological_order(self, txf):
        a, b, c = chain_of_three(txf)
        index = AncestryIndex([c, b, a])  # insertion order reversed
        ordered = [tx.txid for tx in index.topological_order()]
        assert ordered.index(a.txid) < ordered.index(b.txid) < ordered.index(c.txid)

    def test_contains_and_len(self, txf):
        a, b, _ = chain_of_three(txf)
        index = AncestryIndex([a, b])
        assert a.txid in index
        assert len(index) == 2


class TestCpfpDetection:
    def test_child_in_same_block_is_cpfp(self, txf):
        parent = txf.tx(nonce=1)
        child = txf.tx(parents=(parent.txid,), nonce=2)
        block = make_test_block([parent, child])
        assert find_cpfp_txids(block) == {child.txid}
        assert find_cpfp_parent_txids(block) == {parent.txid}
        assert cpfp_involved_txids(block) == {parent.txid, child.txid}

    def test_child_in_later_block_is_not_cpfp(self, txf):
        parent = txf.tx(nonce=1)
        child = txf.tx(parents=(parent.txid,), nonce=2)
        block = make_test_block([child])  # parent committed earlier
        assert find_cpfp_txids(block) == frozenset()

    def test_grandchild_chain_all_marked(self, txf):
        a, b, c = chain_of_three(txf)
        block = make_test_block([a, b, c])
        assert find_cpfp_txids(block) == {b.txid, c.txid}
        assert find_cpfp_parent_txids(block) == {a.txid, b.txid}

    def test_cpfp_fraction(self, txf):
        parent = txf.tx(nonce=1)
        child = txf.tx(parents=(parent.txid,), nonce=2)
        loner = txf.tx(nonce=3)
        block1 = make_test_block([parent, child], height=0)
        block2 = make_test_block([loner], height=1)
        assert cpfp_fraction([block1, block2]) == pytest.approx(1 / 3)

    def test_cpfp_fraction_empty(self):
        assert cpfp_fraction([]) == 0.0

    def test_dependency_closure(self, txf):
        a, b, c = chain_of_three(txf)
        txs = {tx.txid: tx for tx in (a, b, c)}
        assert dependency_closure(txs, c.txid) == {a.txid, b.txid}
        assert dependency_closure(txs, a.txid) == frozenset()


# ----------------------------------------------------------------------
# Property: incremental reverse index ≡ O(n) scan
# ----------------------------------------------------------------------
from hypothesis import given, settings, strategies as st


@st.composite
def add_remove_script(draw):
    """A script of add/remove ops over txs with random parent links.

    Each added tx draws parents from the txs created before it (tracked
    or not — out-of-set parents must never surface as children edges),
    and removals target any previously created txid, present or not.
    """
    op_count = draw(st.integers(min_value=1, max_value=24))
    ops = []
    created = 0
    for _ in range(op_count):
        if created and draw(st.booleans()):
            ops.append(("remove", draw(st.integers(0, created - 1))))
        else:
            parent_pool = list(range(created))
            parents = draw(
                st.lists(
                    st.sampled_from(parent_pool), unique=True, max_size=3
                )
                if parent_pool
                else st.just([])
            )
            ops.append(("add", parents))
            created += 1
    return ops


class TestChildrenIndexProperty:
    @given(script=add_remove_script())
    @settings(max_examples=60, deadline=None)
    def test_children_of_matches_scan_oracle(self, script):
        factory = TxFactory("children-prop")
        index = AncestryIndex()
        txs = []
        for op, arg in script:
            if op == "add":
                tx = factory.tx(parents=tuple(txs[i].txid for i in arg))
                txs.append(tx)
                index.add(tx)
            else:
                index.remove(txs[arg].txid)
            for tx in txs:
                assert index.children_of(tx.txid) == index.children_of_by_scan(
                    tx.txid
                ), f"reverse index diverged after {op}"

    def test_remove_then_readd_restores_children(self, txf):
        a, b, c = chain_of_three(txf)
        index = AncestryIndex([a, b, c])
        index.remove(b.txid)
        assert index.children_of(a.txid) == frozenset()
        index.add(b)
        assert index.children_of(a.txid) == {b.txid}
        assert index.children_of(b.txid) == {c.txid}
