"""Cross-validation: the evented reference path vs the engine fast path.

DESIGN.md promises that the vectorised engine reproduces the evented
network's audit-relevant observables.  These tests run the *same
workload plan and pool lineup* through both paths and compare what the
audit consumes: commit coverage, delay distributions, ordering
conformance (PPE), and violation fractions.  The two paths use
different randomness for propagation, so comparisons are distributional
rather than exact.
"""

import numpy as np
import pytest

from repro.core.congestion import commit_delays_in_blocks
from repro.core.ppe import chain_ppe, summarize_ppe
from repro.mining.pool import DATASET_C_POOLS, make_pools
from repro.mining.policies import FeeRatePolicy
from repro.simulation.engine import (
    EngineConfig,
    ObserverConfig,
    SimulationEngine,
)
from repro.simulation.evented import EventedConfig, EventedSimulation
from repro.simulation.rng import RngStreams
from repro.simulation.workload import (
    DemandModel,
    SizeModel,
    WorkloadConfig,
    WorkloadGenerator,
)


DURATION = 60 * 600.0  # 60 target blocks


@pytest.fixture(scope="module")
def shared_plan():
    config = WorkloadConfig(
        duration=DURATION,
        capacity_vsize_per_second=1_000_000 / 600.0,
        demand=DemandModel(base_ratio=0.9),
        sizes=SizeModel(median_vsize=8000.0),
    )
    return WorkloadGenerator(config, RngStreams(2024)).generate()


def fresh_pools():
    pools = make_pools(DATASET_C_POOLS[:6])
    for pool in pools:
        pool.policy = FeeRatePolicy(package_selection=True)
    return pools


@pytest.fixture(scope="module")
def shared_schedule():
    from repro.mining.pool import normalize_hash_shares
    from repro.simulation.engine import generate_block_schedule

    return generate_block_schedule(
        DURATION,
        600.0,
        normalize_hash_shares(fresh_pools()),
        RngStreams(7).stream("mining"),
    )


@pytest.fixture(scope="module")
def evented_dataset(shared_plan, shared_schedule):
    simulation = EventedSimulation(
        EventedConfig(duration=DURATION), fresh_pools(), RngStreams(7)
    )
    return simulation.run(shared_plan, schedule=shared_schedule)


@pytest.fixture(scope="module")
def engine_dataset(shared_plan, shared_schedule):
    engine = SimulationEngine(
        EngineConfig(duration=DURATION, empty_block_probability=0.0),
        fresh_pools(),
        [ObserverConfig(name="fast", min_fee_rate=0.0)],
        RngStreams(7),
        schedule=shared_schedule,
    )
    return engine.run(shared_plan).dataset


def delays_of(dataset):
    records = [r for r in dataset.tx_records.values() if r.committed]
    return commit_delays_in_blocks(
        [r.broadcast_time for r in records],
        [r.commit_height for r in records],
        dataset.block_times(),
    )


class TestPathsAgree:
    def test_both_commit_the_bulk_of_transactions(
        self, evented_dataset, engine_dataset, shared_plan
    ):
        # The workload deliberately overfills capacity (persistent
        # backlog); both paths should still commit the same majority.
        for dataset in (evented_dataset, engine_dataset):
            committed = sum(
                1 for r in dataset.tx_records.values() if r.committed
            )
            assert committed > 0.5 * len(shared_plan)

    def test_commit_coverage_similar(self, evented_dataset, engine_dataset):
        evented = sum(1 for r in evented_dataset.tx_records.values() if r.committed)
        fast = sum(1 for r in engine_dataset.tx_records.values() if r.committed)
        assert abs(evented - fast) < 0.1 * max(evented, fast)

    def test_delay_distributions_close(self, evented_dataset, engine_dataset):
        evented = delays_of(evented_dataset)
        fast = delays_of(engine_dataset)
        for q in (0.5, 0.9):
            assert abs(
                float(np.quantile(evented, q)) - float(np.quantile(fast, q))
            ) <= 2.0  # within two blocks at the probed quantiles

    def test_ordering_conformance_similar(self, evented_dataset, engine_dataset):
        evented = summarize_ppe(chain_ppe(list(evented_dataset.chain)))
        fast = summarize_ppe(chain_ppe(list(engine_dataset.chain)))
        # Both honest lineups order by fee-rate: low PPE on both paths.
        assert evented.mean < 5.0
        assert fast.mean < 5.0

    def test_observer_sees_almost_everything(self, evented_dataset):
        observed = sum(
            1 for r in evented_dataset.tx_records.values() if r.observed
        )
        assert observed > 0.95 * evented_dataset.tx_count

    def test_arrival_skew_is_small_but_nonzero(self, evented_dataset):
        skews = [
            r.observer_arrival - r.broadcast_time
            for r in evented_dataset.tx_records.values()
            if r.observed
        ]
        skews = np.asarray(skews)
        assert float(np.median(skews)) < 10.0
        assert float(skews.max()) > 0.0

    def test_pool_shares_track_configuration(self, evented_dataset):
        shares = {e.pool: e.share for e in evented_dataset.hash_rates()}
        assert shares.get("F2Pool", 0.0) > 0.1  # configured ~27% of subset
