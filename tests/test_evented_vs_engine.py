"""Cross-validation: the evented reference path vs the engine fast path.

DESIGN.md promises that the vectorised engine reproduces the evented
network's audit-relevant observables.  These tests run the *same
workload plan and pool lineup* through both paths and compare what the
audit consumes: commit coverage, delay distributions, ordering
conformance (PPE), and violation fractions.  The two paths use
different randomness for propagation, so comparisons are distributional
rather than exact.
"""

import numpy as np
import pytest

from repro.core.congestion import commit_delays_in_blocks
from repro.core.ppe import chain_ppe, summarize_ppe
from repro.datasets.records import LABEL_SELF_INTEREST, make_label
from repro.faults.schedule import FaultSchedule
from repro.mining.pool import DATASET_C_POOLS, make_pools
from repro.mining.policies import (
    CensorPolicy,
    FeeRatePolicy,
    PrioritizeSetPolicy,
    address_predicate,
)
from repro.simulation.engine import (
    EngineConfig,
    ObserverConfig,
    SimulationEngine,
)
from repro.simulation.evented import EventedConfig, EventedSimulation
from repro.simulation.rng import RngStreams
from repro.simulation.workload import (
    DemandModel,
    InjectionConfig,
    SizeModel,
    WorkloadConfig,
    WorkloadGenerator,
)


DURATION = 60 * 600.0  # 60 target blocks


@pytest.fixture(scope="module")
def shared_plan():
    config = WorkloadConfig(
        duration=DURATION,
        capacity_vsize_per_second=1_000_000 / 600.0,
        demand=DemandModel(base_ratio=0.9),
        sizes=SizeModel(median_vsize=8000.0),
    )
    return WorkloadGenerator(config, RngStreams(2024)).generate()


def fresh_pools():
    pools = make_pools(DATASET_C_POOLS[:6])
    for pool in pools:
        pool.policy = FeeRatePolicy(package_selection=True)
    return pools


@pytest.fixture(scope="module")
def shared_schedule():
    from repro.mining.pool import normalize_hash_shares
    from repro.simulation.engine import generate_block_schedule

    return generate_block_schedule(
        DURATION,
        600.0,
        normalize_hash_shares(fresh_pools()),
        RngStreams(7).stream("mining"),
    )


@pytest.fixture(scope="module")
def evented_dataset(shared_plan, shared_schedule):
    simulation = EventedSimulation(
        EventedConfig(duration=DURATION), fresh_pools(), RngStreams(7)
    )
    return simulation.run(shared_plan, schedule=shared_schedule)


@pytest.fixture(scope="module")
def engine_dataset(shared_plan, shared_schedule):
    engine = SimulationEngine(
        EngineConfig(duration=DURATION, empty_block_probability=0.0),
        fresh_pools(),
        [ObserverConfig(name="fast", min_fee_rate=0.0)],
        RngStreams(7),
        schedule=shared_schedule,
    )
    return engine.run(shared_plan).dataset


def delays_of(dataset):
    records = [r for r in dataset.tx_records.values() if r.committed]
    return commit_delays_in_blocks(
        [r.broadcast_time for r in records],
        [r.commit_height for r in records],
        dataset.block_times(),
    )


class TestPathsAgree:
    def test_both_commit_the_bulk_of_transactions(
        self, evented_dataset, engine_dataset, shared_plan
    ):
        # The workload deliberately overfills capacity (persistent
        # backlog); both paths should still commit the same majority.
        for dataset in (evented_dataset, engine_dataset):
            committed = sum(
                1 for r in dataset.tx_records.values() if r.committed
            )
            assert committed > 0.5 * len(shared_plan)

    def test_commit_coverage_similar(self, evented_dataset, engine_dataset):
        evented = sum(1 for r in evented_dataset.tx_records.values() if r.committed)
        fast = sum(1 for r in engine_dataset.tx_records.values() if r.committed)
        assert abs(evented - fast) < 0.1 * max(evented, fast)

    def test_delay_distributions_close(self, evented_dataset, engine_dataset):
        evented = delays_of(evented_dataset)
        fast = delays_of(engine_dataset)
        for q in (0.5, 0.9):
            assert abs(
                float(np.quantile(evented, q)) - float(np.quantile(fast, q))
            ) <= 2.0  # within two blocks at the probed quantiles

    def test_ordering_conformance_similar(self, evented_dataset, engine_dataset):
        evented = summarize_ppe(chain_ppe(list(evented_dataset.chain)))
        fast = summarize_ppe(chain_ppe(list(engine_dataset.chain)))
        # Both honest lineups order by fee-rate: low PPE on both paths.
        assert evented.mean < 5.0
        assert fast.mean < 5.0

    def test_observer_sees_almost_everything(self, evented_dataset):
        observed = sum(
            1 for r in evented_dataset.tx_records.values() if r.observed
        )
        assert observed > 0.95 * evented_dataset.tx_count

    def test_arrival_skew_is_small_but_nonzero(self, evented_dataset):
        skews = [
            r.observer_arrival - r.broadcast_time
            for r in evented_dataset.tx_records.values()
            if r.observed
        ]
        skews = np.asarray(skews)
        assert float(np.median(skews)) < 10.0
        assert float(skews.max()) > 0.0

    def test_pool_shares_track_configuration(self, evented_dataset):
        shares = {e.pool: e.share for e in evented_dataset.hash_rates()}
        assert shares.get("F2Pool", 0.0) > 0.1  # configured ~27% of subset


# ----------------------------------------------------------------------
# Misbehaving-policy lineup: F2Pool boosts transactions paying its own
# wallets (self-interest acceleration), Poolin censors that same set.
# ----------------------------------------------------------------------

ACCELERATOR = "F2Pool"
CENSOR = "Poolin"
SELF_INTEREST_LABEL = make_label(LABEL_SELF_INTEREST, ACCELERATOR)


def misbehaving_pools():
    pools = make_pools(DATASET_C_POOLS[:6])
    for pool in pools:
        pool.policy = FeeRatePolicy(package_selection=True)
    accel = pools[0]
    assert accel.name == ACCELERATOR
    accel.policy = PrioritizeSetPolicy(
        base=FeeRatePolicy(package_selection=True),
        boost=address_predicate(accel.wallet_addresses),
        label=f"boost/{ACCELERATOR}",
    )
    censor = pools[1]
    assert censor.name == CENSOR
    censor.policy = CensorPolicy(
        base=FeeRatePolicy(package_selection=True),
        banned=address_predicate(accel.wallet_addresses),
        label=f"censor/{CENSOR}",
    )
    return pools


@pytest.fixture(scope="module")
def misbehaving_plan():
    pools = misbehaving_pools()
    config = WorkloadConfig(
        duration=DURATION,
        capacity_vsize_per_second=1_000_000 / 600.0,
        demand=DemandModel(base_ratio=0.9),
        sizes=SizeModel(median_vsize=8000.0),
        injections=InjectionConfig(self_interest_counts={ACCELERATOR: 40}),
        pool_wallets={pool.name: pool.reward_addresses for pool in pools},
    )
    return WorkloadGenerator(config, RngStreams(2025)).generate()


@pytest.fixture(scope="module")
def evented_misbehaving(misbehaving_plan, shared_schedule):
    simulation = EventedSimulation(
        EventedConfig(duration=DURATION), misbehaving_pools(), RngStreams(7)
    )
    return simulation.run(misbehaving_plan, schedule=shared_schedule)


@pytest.fixture(scope="module")
def engine_misbehaving(misbehaving_plan, shared_schedule):
    engine = SimulationEngine(
        EngineConfig(duration=DURATION, empty_block_probability=0.0),
        misbehaving_pools(),
        [ObserverConfig(name="fast", min_fee_rate=0.0)],
        RngStreams(7),
        schedule=shared_schedule,
    )
    return engine.run(misbehaving_plan).dataset


def self_interest_records(dataset):
    return [
        r
        for r in dataset.tx_records.values()
        if SELF_INTEREST_LABEL in r.labels
    ]


def wallet_touching_commits(dataset, addresses):
    """(pool, commit_position) for every committed tx paying ``addresses``."""
    hits = []
    for block in dataset.chain:
        pool = dataset.block_pools.get(block.height)
        for position, tx in enumerate(block.transactions):
            if tx.touches_address(addresses):
                hits.append((pool, position))
    return hits


class TestMisbehavingPathsAgree:
    def test_commit_coverage_similar(
        self, evented_misbehaving, engine_misbehaving
    ):
        evented = sum(
            1 for r in evented_misbehaving.tx_records.values() if r.committed
        )
        fast = sum(
            1 for r in engine_misbehaving.tx_records.values() if r.committed
        )
        assert evented > 0
        assert abs(evented - fast) < 0.1 * max(evented, fast)

    def test_censor_pool_commits_no_targeted_tx_on_either_path(
        self, evented_misbehaving, engine_misbehaving
    ):
        wallets = misbehaving_pools()[0].wallet_addresses
        for dataset in (evented_misbehaving, engine_misbehaving):
            hits = wallet_touching_commits(dataset, wallets)
            # Non-vacuous: the targeted set does get committed — just
            # never by the censoring pool.
            assert hits
            assert all(pool != CENSOR for pool, _ in hits)

    def test_accelerator_front_loads_boosted_txs_on_both_paths(
        self, evented_misbehaving, engine_misbehaving
    ):
        wallets = misbehaving_pools()[0].wallet_addresses
        for dataset in (evented_misbehaving, engine_misbehaving):
            own = [
                position
                for pool, position in wallet_touching_commits(dataset, wallets)
                if pool == ACCELERATOR
            ]
            # Boosted entries form the block head: their positions are
            # bounded by the boosted-set size (40 injected), far above
            # where sub-1-sat/vB transactions would land on fee order.
            assert own
            assert max(own) < 40

    def test_self_interest_delays_close(
        self, evented_misbehaving, engine_misbehaving
    ):
        counts = []
        for dataset in (evented_misbehaving, engine_misbehaving):
            records = self_interest_records(dataset)
            assert records
            counts.append(sum(1 for r in records if r.committed))
        assert abs(counts[0] - counts[1]) <= 0.25 * max(counts) + 2


# ----------------------------------------------------------------------
# Fault-degraded lineup: relay loss plus two forced stale blocks.  The
# loss rates are modelled differently per path (the engine drops on the
# tx->pool channel, the evented network drops per gossip hop), so the
# comparisons stay distributional — but the chain-validity invariant
# below is exact: a child whose in-plan parent went missing must be
# withheld, never committed ahead of it.
# ----------------------------------------------------------------------


def degraded_faults() -> FaultSchedule:
    return FaultSchedule(
        seed=11,
        tx_loss_rate=0.05,
        pool_loss_rate=0.05,
        per_hop_loss_rate=0.005,
        stale_block_indexes=(2, 5),
    )


@pytest.fixture(scope="module")
def evented_degraded(shared_plan, shared_schedule):
    simulation = EventedSimulation(
        EventedConfig(duration=DURATION),
        fresh_pools(),
        RngStreams(7),
        faults=degraded_faults(),
    )
    return simulation.run(shared_plan, schedule=shared_schedule)


@pytest.fixture(scope="module")
def engine_degraded(shared_plan, shared_schedule):
    engine = SimulationEngine(
        EngineConfig(duration=DURATION, empty_block_probability=0.0),
        fresh_pools(),
        [ObserverConfig(name="fast", min_fee_rate=0.0)],
        RngStreams(7),
        schedule=shared_schedule,
        faults=degraded_faults(),
    )
    return engine.run(shared_plan).dataset


def assert_parent_closed(dataset, plan):
    """No committed tx may precede an in-plan parent on the chain."""
    plan_txids = {planned.tx.txid for planned in plan}
    committed: set[str] = set()
    for block in dataset.chain:
        for tx in block.transactions:
            missing = (tx.parent_txids & plan_txids) - committed
            assert not missing, (
                f"block {block.height}: {tx.txid} committed before "
                f"in-plan parents {sorted(missing)}"
            )
            committed.add(tx.txid)


class TestDegradedPathsAgree:
    def test_blocks_are_parent_closed_on_both_paths(
        self, evented_degraded, engine_degraded, shared_plan
    ):
        # Regression for the evented `mine` path, which used to assemble
        # straight from the winner's mempool: a CPFP child whose parent
        # was lost en route to the winner could be committed parentless.
        assert_parent_closed(evented_degraded, shared_plan)
        assert_parent_closed(engine_degraded, shared_plan)

    def test_honest_paths_are_parent_closed_too(
        self, evented_dataset, engine_dataset, shared_plan
    ):
        assert_parent_closed(evented_dataset, shared_plan)
        assert_parent_closed(engine_dataset, shared_plan)

    def test_both_paths_orphan_the_forced_stale_blocks(
        self, evented_degraded, engine_degraded
    ):
        assert evented_degraded.metadata["orphaned_blocks"] == 2
        assert engine_degraded.metadata["orphaned_blocks"] == 2

    def test_commit_coverage_similar_under_faults(
        self, evented_degraded, engine_degraded
    ):
        evented = sum(
            1 for r in evented_degraded.tx_records.values() if r.committed
        )
        fast = sum(
            1 for r in engine_degraded.tx_records.values() if r.committed
        )
        assert evented > 0
        assert abs(evented - fast) < 0.15 * max(evented, fast)

    def test_delay_distributions_close_under_faults(
        self, evented_degraded, engine_degraded
    ):
        evented = delays_of(evented_degraded)
        fast = delays_of(engine_degraded)
        for q in (0.5, 0.9):
            assert abs(
                float(np.quantile(evented, q)) - float(np.quantile(fast, q))
            ) <= 3.0
