"""Differential-testing harness: vectorized metrics vs the scalar oracle.

The scalar implementations in ``repro.core.norms/ppe/violations/
stattests`` are the *reference oracle* — literal transcriptions of the
paper's definitions.  ``repro.core.vectorized`` recomputes the same
quantities over packed arrays.  This module holds the comparison
contract both the Hypothesis suite and the dataset-level tests assert:

* ranks, per-block PPE, SPPE, and violation counts must match the
  oracle **exactly** (bit for bit) — the vectorized code performs the
  same IEEE operations on the same values in the same order;
* binomial-tail p-values may differ in log-sum-exp accumulation order —
  they must agree within ``P_VALUE_REL_TOL`` *relative* tolerance.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.norms import CpfpFilter
from repro.core.ppe import chain_ppe, per_transaction_sppe, sppe
from repro.core.stattests import binom_tail_lower, binom_tail_upper
from repro.core.vectorized import (
    ChainArrays,
    analyze_snapshot_multi,
    binom_tail_lower_vec,
    binom_tail_upper_vec,
    chain_ppe_arrays,
    count_violations_multi,
    per_transaction_sppe_arrays,
    sppe_arrays,
)
from repro.core.violations import analyze_snapshot, count_violations

#: Documented relative tolerance for p-values (observed diffs ~1e-15).
P_VALUE_REL_TOL = 1e-9

#: ε grid used for violation cross-checks (the Fig 6 grid).
EPSILON_GRID = (0.0, 10.0, 600.0)


def floats_equal(a: float, b: float) -> bool:
    """Bit-level equality with NaN == NaN (degenerate SPPE)."""
    return a == b or (math.isnan(a) and math.isnan(b))


def nan_equal(a, b) -> bool:
    """Deep bit-for-bit equality where NaN == NaN.

    Recurses through dataclasses, mappings, sequences and numpy arrays;
    floats compare via :func:`floats_equal`.  This is the comparator the
    streaming differential contract uses: an ``AuditReport`` full of
    degenerate-NaN SPPE cells must still compare equal to itself.
    """
    if isinstance(a, float) or isinstance(b, float):
        return (
            isinstance(a, float)
            and isinstance(b, float)
            and floats_equal(a, b)
        )
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return type(a) is type(b) and all(
            nan_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and bool(np.array_equal(a, b, equal_nan=a.dtype.kind == "f"))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and list(a) == list(b)
            and all(nan_equal(a[k], b[k]) for k in a)
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(nan_equal(x, y) for x, y in zip(a, b))
        )
    return a == b


def assert_audit_reports_equal(streamed, batch) -> None:
    """Field-by-field bit-identity of two AuditReports (NaN-tolerant).

    Asserted per field so a divergence names the section that broke
    instead of dumping two whole reports.
    """
    for fld in dataclasses.fields(batch):
        a = getattr(streamed, fld.name)
        b = getattr(batch, fld.name)
        assert nan_equal(a, b), (
            f"audit section {fld.name!r} diverged:\n"
            f"  streamed={a!r}\n  batch={b!r}"
        )


def assert_p_close(scalar: float, vectorized: float, context: str = "") -> None:
    """Assert two p-values agree within the documented relative tolerance."""
    if scalar == vectorized:
        return
    denom = max(abs(scalar), abs(vectorized))
    rel = abs(scalar - vectorized) / denom
    assert rel <= P_VALUE_REL_TOL, (
        f"p-value mismatch {context}: scalar={scalar!r} "
        f"vectorized={vectorized!r} rel={rel:.3e}"
    )


def assert_tails_match(x: int, n: int, p: float) -> None:
    """Both tails of one (x, n, p) cell, scalar vs vectorized."""
    assert_p_close(
        binom_tail_upper(x, n, p),
        binom_tail_upper_vec(x, n, p),
        context=f"upper x={x} n={n} p={p}",
    )
    assert_p_close(
        binom_tail_lower(x, n, p),
        binom_tail_lower_vec(x, n, p),
        context=f"lower x={x} n={n} p={p}",
    )


def assert_blocks_equivalent(
    blocks,
    block_pools=None,
    cpfp_filter: CpfpFilter = CpfpFilter.CHILDREN,
    target_txids=None,
) -> ChainArrays:
    """Full PPE/SPPE cross-check of one block list; returns the arrays.

    Asserts bit-identical per-block PPE, per-transaction signed errors
    (values *and* insertion order), and — when ``target_txids`` is given
    — the SPPE of that set (NaN-tolerant for empty matches).
    """
    arrays = ChainArrays.from_blocks(blocks, block_pools, cpfp_filter)

    scalar_ppe = chain_ppe(blocks, cpfp_filter)
    vector_ppe = chain_ppe_arrays(arrays)
    assert scalar_ppe == vector_ppe, "chain PPE diverged"

    scalar_map = per_transaction_sppe(blocks, cpfp_filter)
    vector_map = per_transaction_sppe_arrays(arrays)
    assert list(scalar_map) == list(vector_map), "per-tx order diverged"
    assert scalar_map == vector_map, "per-tx signed errors diverged"

    if target_txids is not None:
        scalar_sppe = sppe(blocks, target_txids, cpfp_filter)
        vector_sppe = sppe_arrays(arrays, target_txids)
        assert scalar_sppe.tx_count == vector_sppe.tx_count
        assert floats_equal(scalar_sppe.sppe, vector_sppe.sppe)
        assert floats_equal(
            scalar_sppe.accelerated_fraction,
            vector_sppe.accelerated_fraction,
        )
    return arrays


def assert_snapshot_equivalent(view, epsilons=EPSILON_GRID) -> None:
    """Violation stats of one joined snapshot across an ε grid."""
    multi = analyze_snapshot_multi(view, epsilons)
    for epsilon, stats in zip(epsilons, multi):
        assert stats == analyze_snapshot(view, epsilon), f"ε={epsilon}"


def assert_pair_counts_equivalent(
    arrival_times, fee_rates, commit_heights, epsilons=EPSILON_GRID
) -> None:
    """Raw (eligible, violating) counts on explicit arrays."""
    multi = count_violations_multi(
        arrival_times, fee_rates, commit_heights, epsilons
    )
    for epsilon, counted in zip(epsilons, multi):
        assert counted == count_violations(
            arrival_times, fee_rates, commit_heights, epsilon
        ), f"ε={epsilon}"


def assert_dataset_equivalent(dataset, pools_to_check: int = 6) -> None:
    """The whole differential contract over one built dataset.

    Covers: whole-chain PPE, per-pool PPE, per-pool per-tx SPPE maps,
    inferred self-interest SPPE per pool (the Table 2 cell), the indexed
    vs scanned wallet inference, and the Fig 6 violation grid over a
    deterministic snapshot sample.
    """
    from repro.core.audit import Auditor

    arrays = ChainArrays.from_dataset(dataset)
    assert chain_ppe(dataset.chain) == chain_ppe_arrays(arrays)

    pools = [est.pool for est in dataset.hash_rates()[:pools_to_check]]
    for pool in pools:
        blocks = dataset.blocks_of(pool)
        mask = arrays.block_mask(pool)
        assert chain_ppe(blocks) == chain_ppe_arrays(arrays, block_mask=mask)

        scalar_map = per_transaction_sppe(blocks)
        vector_map = per_transaction_sppe_arrays(arrays, pool=pool)
        assert list(scalar_map) == list(vector_map)
        assert scalar_map == vector_map

        wallets = dataset.pool_wallets.get(pool, frozenset())
        if wallets:
            assert frozenset(
                dataset.chain.transactions_touching(wallets)
            ) == dataset.chain.transactions_touching_indexed(wallets)
        txids = dataset.inferred_self_interest_txids(pool)
        assert txids == dataset.inferred_self_interest_txids_indexed(pool)
        for target in pools:
            scalar_sppe = sppe(dataset.blocks_of(target), txids)
            vector_sppe = sppe_arrays(arrays, txids, pool=target)
            assert scalar_sppe.tx_count == vector_sppe.tx_count
            assert floats_equal(scalar_sppe.sppe, vector_sppe.sppe)

    auditor = Auditor(dataset)
    for view in auditor.snapshot_views(
        count=6, rng=np.random.default_rng(30)
    ):
        assert_snapshot_equivalent(view)
