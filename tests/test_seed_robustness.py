"""Seed robustness: the audit's qualitative findings survive reseeding.

Calibration must not be seed-overfitting: the detections and null
results the benchmarks assert should hold for fresh seeds too.  These
tests run the misbehaviour scenario at a small scale under several
seeds and check the findings that must be seed-independent.
"""

import pytest

from repro.core.audit import Auditor
from repro.core.stattests import STRONG_EVIDENCE_P
from repro.simulation.scenarios import dataset_c_scenario

SEEDS = (11, 222, 3333)


@pytest.fixture(scope="module", params=SEEDS)
def reseeded_auditor(request):
    dataset = dataset_c_scenario(seed=request.param, scale=0.08).run().dataset
    return Auditor(dataset)


class TestSeedRobustness:
    def test_f2pool_always_suspicious(self, reseeded_auditor):
        # At this tiny scale the test can be underpowered (y ~ 20
        # c-blocks; see the ext_power experiment), so we assert the
        # seed-independent direction (over-representation) plus
        # significance at alpha=0.05; the benchmarks assert the strict
        # alpha=0.001 at their larger scale.
        txids = reseeded_auditor.dataset.inferred_self_interest_txids("F2Pool")
        result = reseeded_auditor.prioritization_test_for("F2Pool", txids)
        assert result.observed_share > 1.5 * result.theta0, result
        assert result.p_accelerate < 0.06, result

    def test_flagged_sppe_always_large(self, reseeded_auditor):
        txids = reseeded_auditor.dataset.inferred_self_interest_txids("F2Pool")
        sppe = reseeded_auditor.sppe_for("F2Pool", txids)
        assert sppe.sppe > 50.0

    def test_honest_pools_never_flagged(self, reseeded_auditor):
        for pool in ("Poolin", "AntPool", "Huobi", "OKEx"):
            txids = reseeded_auditor.dataset.inferred_self_interest_txids(pool)
            if not txids:
                continue
            result = reseeded_auditor.prioritization_test_for(pool, txids)
            assert not result.accelerates(STRONG_EVIDENCE_P), (pool, result)

    def test_scam_never_significant(self, reseeded_auditor):
        for row in reseeded_auditor.scam_table():
            assert not row.test.accelerates(STRONG_EVIDENCE_P)
            assert not row.test.decelerates(STRONG_EVIDENCE_P)

    def test_dark_fee_detector_precision_holds(self, reseeded_auditor):
        import numpy as np

        from repro.simulation.scenarios import BTC_COM_SERVICE

        report = reseeded_auditor.dark_fee_sweep(
            "BTC.com",
            service_name=BTC_COM_SERVICE,
            thresholds=(99.0,),
            rng=np.random.default_rng(0),
        )
        strict = report.rows[0]
        if strict.candidate_count >= 3:
            assert strict.precision > 0.5

    def test_ppe_stays_in_band(self, reseeded_auditor):
        summary = reseeded_auditor.ppe_summary()
        assert 0.5 < summary.mean < 12.0


class TestNullFaultScheduleIsInvisible:
    def test_zero_rate_schedule_yields_byte_identical_artifacts(self, tmp_path):
        from repro.datasets.io import save_dataset
        from repro.faults import FaultSchedule

        clean = dataset_c_scenario(seed=11, scale=0.04).run().dataset
        nulled = (
            dataset_c_scenario(seed=11, scale=0.04, faults=FaultSchedule(seed=99))
            .run()
            .dataset
        )
        clean_path = save_dataset(clean, tmp_path / "clean.json.gz")
        nulled_path = save_dataset(nulled, tmp_path / "nulled.json.gz")
        assert clean_path.read_bytes() == nulled_path.read_bytes()
