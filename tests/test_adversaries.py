"""Adversary zoo: property and unit tests for the attack policies.

Every zoo template policy must honour the same contracts the honest
builders do — budget respected, topology valid, totals consistent,
deterministic in the input set — no matter how hostile the ordering it
produces looks to the auditor.  The selfish-mining attack is a pure
function of the discovery schedule and its own seed, so its state
machine is pinned directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mempool.mempool import MempoolEntry
from repro.mining.adversaries import (
    BucketedPriorityPolicy,
    CallAuctionPolicy,
    CensorForRentPolicy,
    FifoPolicy,
    MevCampaign,
    SandwichPolicy,
    SelfishMiningAttack,
    ZOO_POLICIES,
    fee_rate_bucket,
)
from repro.mining.gbt import TemplateBudgetError, is_topologically_valid
from repro.mining.policies import FeeRatePolicy, txid_set_predicate

from conftest import TxFactory


def random_entries(seed: int, count: int, chain_probability: float = 0.3):
    txf = TxFactory(f"zoo-{seed}")
    rng = np.random.default_rng(seed)
    entries = []
    for index in range(count):
        parents = ()
        if entries and rng.random() < chain_probability:
            parent = entries[int(rng.integers(len(entries)))]
            parents = (parent.tx.txid,)
        tx = txf.tx(
            fee=int(rng.integers(1, 100_000)),
            vsize=int(rng.integers(100, 2000)),
            parents=parents,
        )
        entries.append(MempoolEntry(tx=tx, arrival_time=float(index)))
    return entries


def zoo_policy(key: str, entries):
    """Instantiate a zoo policy by registry key against these entries."""
    if key == "sandwich":
        txids = sorted(e.txid for e in entries)
        victims = frozenset(txids[::3])
        attackers = frozenset(txids[1::3])
        return SandwichPolicy(
            base=FeeRatePolicy(),
            victim=txid_set_predicate(lambda: victims),
            attacker=txid_set_predicate(lambda: attackers),
        )
    if key == "censor-for-rent":
        banned = frozenset(sorted(e.txid for e in entries)[::2])
        return CensorForRentPolicy(
            base=FeeRatePolicy(),
            banned=txid_set_predicate(lambda: banned),
            ransom_rate=50.0,
        )
    return ZOO_POLICIES[key]()


# ----------------------------------------------------------------------
# Shared template contracts, per policy
# ----------------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(ZOO_POLICIES))
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=0, max_value=40),
    max_vsize=st.integers(min_value=1_000, max_value=40_000),
    reserved=st.integers(min_value=0, max_value=1_000),
)
def test_zoo_templates_respect_budget_and_topology(
    key, seed, count, max_vsize, reserved
):
    entries = random_entries(seed, count)
    policy = zoo_policy(key, entries)
    template = policy.build(entries, max_vsize=max_vsize, reserved_vsize=reserved)

    txs = template.transactions
    assert template.total_vsize <= max_vsize - reserved
    assert is_topologically_valid(txs)
    # Totals describe exactly the committed set, with no duplicates.
    assert len({tx.txid for tx in txs}) == len(txs)
    assert template.total_fee == sum(tx.fee for tx in txs)
    by_txid = {e.txid: e for e in entries}
    assert template.total_vsize == sum(by_txid[tx.txid].vsize for tx in txs)


@pytest.mark.parametrize("key", sorted(ZOO_POLICIES))
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=30),
    shuffle_seed=st.integers(min_value=0, max_value=10_000),
)
def test_zoo_templates_are_input_order_insensitive(
    key, seed, count, shuffle_seed
):
    """The mempool iteration order must never leak into a template."""
    entries = random_entries(seed, count)
    policy = zoo_policy(key, entries)
    reference = policy.build(entries)
    shuffled = list(entries)
    np.random.default_rng(shuffle_seed).shuffle(shuffled)
    again = policy.build(shuffled)
    assert [t.txid for t in again.transactions] == [
        t.txid for t in reference.transactions
    ]


@pytest.mark.parametrize("key", sorted(ZOO_POLICIES))
def test_zoo_templates_raise_on_impossible_budget(key):
    entries = random_entries(7, 10)
    policy = zoo_policy(key, entries)
    with pytest.raises(TemplateBudgetError):
        policy.build(entries, max_vsize=1_000, reserved_vsize=2_000)


# ----------------------------------------------------------------------
# Per-policy ordering semantics
# ----------------------------------------------------------------------


def test_fifo_orders_by_arrival_not_fee():
    txf = TxFactory("fifo")
    cheap_old = MempoolEntry(tx=txf.tx(fee=100, vsize=100), arrival_time=1.0)
    rich_new = MempoolEntry(tx=txf.tx(fee=90_000, vsize=100), arrival_time=2.0)
    template = FifoPolicy().build([rich_new, cheap_old])
    assert [t.txid for t in template.transactions] == [
        cheap_old.txid,
        rich_new.txid,
    ]


def test_fifo_is_per_sender_fifo():
    """A sender's later transaction never overtakes its earlier one."""
    entries = random_entries(11, 30, chain_probability=0.0)
    template = FifoPolicy().build(entries, max_vsize=10_000)
    arrivals = {e.txid: e.arrival_time for e in entries}
    committed = [arrivals[t.txid] for t in template.transactions]
    assert committed == sorted(committed)


def test_bucketed_keeps_bucket_order_and_fifo_within():
    txf = TxFactory("bucket")
    # Same bucket (width 16): 3 and 15 sat/vB — arrival decides.
    low_late = MempoolEntry(tx=txf.tx(fee=1_500, vsize=100), arrival_time=5.0)
    low_early = MempoolEntry(tx=txf.tx(fee=300, vsize=100), arrival_time=1.0)
    # Higher bucket always first, even arriving last.
    high = MempoolEntry(tx=txf.tx(fee=5_000, vsize=100), arrival_time=9.0)
    template = BucketedPriorityPolicy(width=16.0).build(
        [low_late, low_early, high]
    )
    assert [t.txid for t in template.transactions] == [
        high.txid,
        low_early.txid,
        low_late.txid,
    ]


def test_fee_rate_bucket_rejects_bad_width():
    with pytest.raises(ValueError):
        fee_rate_bucket(100, 100, 0.0)


def test_call_auction_selects_by_fee_orders_by_arrival():
    entries = random_entries(13, 25, chain_probability=0.0)
    auction = CallAuctionPolicy().build(entries, max_vsize=8_000)
    # Selection is exactly the fee norm's (greedy skip-and-continue
    # over single transactions; no chains in this workload)...
    greedy = FeeRatePolicy(package_selection=False).build(
        entries, max_vsize=8_000
    )
    assert {t.txid for t in auction.transactions} == {
        t.txid for t in greedy.transactions
    }
    # ...but the in-block order is arrival, not fee.
    arrivals = {e.txid: e.arrival_time for e in entries}
    committed = [arrivals[t.txid] for t in auction.transactions]
    assert committed == sorted(committed)


def test_sandwich_wraps_victims_with_attacker_txs():
    txf = TxFactory("sandwich")
    victim = MempoolEntry(tx=txf.tx(fee=45_000, vsize=1000), arrival_time=1.0)
    front = MempoolEntry(tx=txf.tx(fee=140, vsize=100), arrival_time=2.0)
    back = MempoolEntry(tx=txf.tx(fee=140, vsize=100), arrival_time=3.0)
    noise = MempoolEntry(tx=txf.tx(fee=30_000, vsize=500), arrival_time=0.5)
    policy = SandwichPolicy(
        base=FeeRatePolicy(),
        victim=txid_set_predicate(lambda: frozenset({victim.txid})),
        attacker=txid_set_predicate(
            lambda: frozenset({front.txid, back.txid})
        ),
    )
    template = policy.build([noise, back, victim, front])
    txids = [t.txid for t in template.transactions]
    position = txids.index(victim.txid)
    # Front-run immediately before, back-run immediately after.
    assert txids[position - 1] in {front.txid, back.txid}
    assert txids[position + 1] in {front.txid, back.txid}
    assert noise.txid in txids


def test_sandwich_intensity_zero_touches_no_victim():
    entries = random_entries(17, 20, chain_probability=0.0)
    victims = frozenset(sorted(e.txid for e in entries)[:5])
    policy = SandwichPolicy(
        base=FeeRatePolicy(),
        victim=txid_set_predicate(lambda: victims),
        attacker=txid_set_predicate(lambda: frozenset()),
        intensity=0.0,
    )
    honest = FeeRatePolicy().build(entries)
    attacked = policy.build(entries)
    assert [t.txid for t in attacked.transactions] == [
        t.txid for t in honest.transactions
    ]


def test_censor_for_rent_excludes_only_sub_ransom_matches():
    txf = TxFactory("ransom")
    poor = MempoolEntry(tx=txf.tx(fee=1_000, vsize=100), arrival_time=1.0)
    paid = MempoolEntry(tx=txf.tx(fee=6_000, vsize=100), arrival_time=2.0)
    free = MempoolEntry(tx=txf.tx(fee=900, vsize=100), arrival_time=3.0)
    banned = frozenset({poor.txid, paid.txid})
    policy = CensorForRentPolicy(
        base=FeeRatePolicy(),
        banned=txid_set_predicate(lambda: banned),
        ransom_rate=50.0,
    )
    txids = {t.txid for t in policy.build([poor, paid, free]).transactions}
    assert poor.txid not in txids  # matched, below the ransom: censored
    assert paid.txid in txids  # matched, at/above the ransom: passes
    assert free.txid in txids  # unmatched: untouched


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=0, max_value=40),
    ransom=st.floats(min_value=0.0, max_value=1_000.0),
)
def test_censor_for_rent_never_commits_a_censored_tx(seed, count, ransom):
    entries = random_entries(seed, count)
    banned = frozenset(sorted(e.txid for e in entries)[::2])
    policy = CensorForRentPolicy(
        base=FeeRatePolicy(),
        banned=txid_set_predicate(lambda: banned),
        ransom_rate=ransom,
    )
    template = policy.build(entries)
    by_txid = {e.txid: e for e in entries}
    for tx in template.transactions:
        entry = by_txid[tx.txid]
        assert not (entry.txid in banned and entry.fee_rate < ransom)


# ----------------------------------------------------------------------
# MEV campaign registry
# ----------------------------------------------------------------------


def test_mev_campaign_registry_round_trips():
    campaign = MevCampaign(name="t")
    campaign.register_victim("v1")
    campaign.register_attacker("a1")
    campaign.register_attacker("a2")
    assert campaign.victims() == frozenset({"v1"})
    assert campaign.attackers() == frozenset({"a1", "a2"})
    # The callable view is live: registrations after a policy captured
    # `campaign.victims` are still visible to that policy.
    view = campaign.victims
    campaign.register_victim("v2")
    assert view() == frozenset({"v1", "v2"})


# ----------------------------------------------------------------------
# Selfish mining state machine
# ----------------------------------------------------------------------


def schedule(winners):
    return [(float(i), w) for i, w in enumerate(winners)]


def test_selfish_mining_validates_parameters():
    with pytest.raises(ValueError):
        SelfishMiningAttack(pool="P", gamma=1.5)
    with pytest.raises(ValueError):
        SelfishMiningAttack(pool="P", engagement=-0.1)


def test_selfish_mining_no_ops_are_byte_invisible():
    attack = SelfishMiningAttack(pool="P", engagement=0.0)
    assert attack.stale_overlay(schedule([0, 1, 0]), ["P", "Q"]) is None
    attack = SelfishMiningAttack(pool="Absent")
    assert attack.stale_overlay(schedule([0, 1, 0]), ["P", "Q"]) is None


def test_selfish_mining_lead_two_orphans_the_honest_block():
    # Selfish pool (index 0) finds two blocks, then honest finds one:
    # the private chain is published and the honest block loses.
    attack = SelfishMiningAttack(pool="P", gamma=0.0, engagement=1.0, seed=1)
    mask = attack.stale_overlay(schedule([0, 0, 1]), ["P", "Q"])
    assert mask is not None
    assert mask.tolist() == [False, False, True]


def test_selfish_mining_lead_one_race_follows_gamma():
    # gamma=1: the honest network always mines on the selfish branch,
    # so the honest discovery is orphaned; gamma=0: the withheld
    # selfish block is the one that dies.
    wins_race = SelfishMiningAttack(pool="P", gamma=1.0, engagement=1.0)
    mask = wins_race.stale_overlay(schedule([0, 1]), ["P", "Q"])
    assert mask.tolist() == [False, True]
    loses_race = SelfishMiningAttack(pool="P", gamma=0.0, engagement=1.0)
    mask = loses_race.stale_overlay(schedule([0, 1]), ["P", "Q"])
    assert mask.tolist() == [True, False]


def test_selfish_mining_is_deterministic_in_its_seed():
    winners = list(np.random.default_rng(3).integers(0, 3, size=200))
    sched = schedule(winners)
    pools = ["P", "Q", "R"]
    attack = SelfishMiningAttack(pool="Q", gamma=0.4, engagement=0.7, seed=42)
    again = SelfishMiningAttack(pool="Q", gamma=0.4, engagement=0.7, seed=42)
    first = attack.stale_overlay(sched, pools)
    second = again.stale_overlay(sched, pools)
    assert first is not None
    assert np.array_equal(first, second)
    # A different seed resolves the races differently.
    other = SelfishMiningAttack(pool="Q", gamma=0.4, engagement=0.7, seed=43)
    assert not np.array_equal(first, other.stale_overlay(sched, pools))


def test_selfish_mining_describe_is_stable_metadata():
    attack = SelfishMiningAttack(pool="P", gamma=0.1, engagement=0.5, seed=9)
    assert attack.describe() == {
        "kind": "selfish-mining",
        "pool": "P",
        "gamma": 0.1,
        "engagement": 0.5,
        "seed": 9,
    }
