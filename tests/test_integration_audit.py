"""Integration: the full audit pipeline over scaled scenario datasets.

These tests exercise the closed loop the paper could not: misbehaviour
is *injected* with ground truth, and the paper's detectors must recover
exactly it — no more, no less.
"""

import numpy as np
import pytest

from repro.core.audit import Auditor
from repro.core.stattests import STRONG_EVIDENCE_P
from repro.simulation.scenarios import BTC_COM_SERVICE


@pytest.fixture(scope="module")
def auditor_c(small_dataset_c):
    return Auditor(small_dataset_c)


@pytest.fixture(scope="module")
def auditor_a(small_dataset_a):
    return Auditor(small_dataset_a)


class TestSelfInterestAudit:
    def test_f2pool_self_acceleration_detected(self, auditor_c):
        txids = auditor_c.dataset.inferred_self_interest_txids("F2Pool")
        result = auditor_c.prioritization_test_for("F2Pool", txids)
        assert result.accelerates(STRONG_EVIDENCE_P)
        assert result.observed_share > 2 * result.theta0

    def test_f2pool_sppe_strongly_positive(self, auditor_c):
        txids = auditor_c.dataset.inferred_self_interest_txids("F2Pool")
        result = auditor_c.sppe_for("F2Pool", txids)
        assert result.tx_count > 0
        assert result.sppe > 50.0

    def test_honest_pool_not_flagged(self, auditor_c):
        txids = auditor_c.dataset.inferred_self_interest_txids("Poolin")
        result = auditor_c.prioritization_test_for("Poolin", txids)
        assert not result.accelerates(STRONG_EVIDENCE_P)

    def test_collusion_direction(self, auditor_c):
        # ViaBTC accelerates SlushPool's transactions, not vice versa.
        slush_txids = auditor_c.dataset.inferred_self_interest_txids("SlushPool")
        viabtc = auditor_c.prioritization_test_for("ViaBTC", slush_txids)
        assert viabtc.observed_share > viabtc.theta0
        viabtc_txids = auditor_c.dataset.inferred_self_interest_txids("ViaBTC")
        slush = auditor_c.prioritization_test_for("SlushPool", viabtc_txids)
        assert not slush.accelerates(STRONG_EVIDENCE_P)

    def test_inference_matches_ground_truth(self, auditor_c):
        dataset = auditor_c.dataset
        truth = dataset.self_interest_txids("F2Pool")
        committed_truth = {
            t for t in truth if dataset.tx_records[t].commit_height is not None
        }
        inferred = dataset.inferred_self_interest_txids("F2Pool")
        # Every committed ground-truth tx pays a pool wallet, so wallet
        # inference must recover it.
        assert committed_truth <= inferred


class TestScamAudit:
    def test_no_scam_discrimination(self, auditor_c):
        rows = auditor_c.scam_table()
        assert rows
        for row in rows:
            assert not row.test.accelerates(STRONG_EVIDENCE_P)
            assert not row.test.decelerates(STRONG_EVIDENCE_P)

    def test_scam_sppe_small(self, auditor_c):
        rows = auditor_c.scam_table()
        finite = [row.sppe for row in rows if row.sppe == row.sppe]
        assert finite
        assert max(abs(s) for s in finite) < 40.0


class TestDarkFeeAudit:
    def test_sweep_precision_profile(self, auditor_c):
        report = auditor_c.dark_fee_sweep(
            "BTC.com", service_name=BTC_COM_SERVICE, rng=np.random.default_rng(1)
        )
        by_threshold = {row.threshold: row for row in report.rows}
        strict = by_threshold[99.0]
        loose = by_threshold[1.0]
        assert strict.candidate_count > 0
        assert strict.precision > 0.5
        assert loose.candidate_count > strict.candidate_count
        assert loose.precision < strict.precision

    def test_recall_against_ground_truth(self, auditor_c):
        scores = auditor_c.dark_fee_scores("BTC.com", service_name=BTC_COM_SERVICE)
        at_90 = next(s for s in scores if s.threshold == 90.0)
        assert at_90.recall > 0.5

    def test_other_pools_blocks_contain_few_accelerated(self, auditor_c):
        # Accelerated txs are boosted by BTC.com; occasionally another
        # pool commits one at its natural (bottom) position — but the
        # bulk lands in BTC.com blocks.
        dataset = auditor_c.dataset
        accelerated = dataset.accelerated_txids(BTC_COM_SERVICE)
        pools = dataset.commit_pools()
        committed = [pools[t] for t in accelerated if t in pools]
        assert committed.count("BTC.com") > len(committed) * 0.5


class TestCongestionAudit:
    def test_delay_summary_sane(self, auditor_a):
        summary = auditor_a.delay_summary()
        assert summary.tx_count > 1000
        assert 0.2 < summary.next_block_fraction <= 1.0

    def test_violations_present_but_small(self, auditor_a):
        stats = auditor_a.violation_stats(epsilon=0.0, count=10)
        fractions = [s.violating_fraction for s in stats]
        assert max(fractions) < 0.2
        assert any(f > 0 for f in fractions)

    def test_congestion_fee_coupling(self, auditor_a):
        from repro.analysis.cdf import dominates

        grouped = auditor_a.fee_rates_by_congestion_level()
        populated = [v for v in grouped.values() if len(v) >= 30]
        assert len(populated) >= 2
        assert dominates(populated[0], populated[-1])


class TestFeeEstimatorIntegration:
    def test_dark_fees_bias_estimation(self, auditor_c):
        from repro.core.fee_estimator import estimator_bias_from_dark_fees

        dataset = auditor_c.dataset
        accelerated = dataset.accelerated_txids(BTC_COM_SERVICE)
        naive, corrected = estimator_bias_from_dark_fees(
            dataset.blocks_of("BTC.com"), accelerated, target_blocks=10, window=50
        )
        assert corrected.fee_rate_sat_vb >= naive.fee_rate_sat_vb
