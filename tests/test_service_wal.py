"""WAL + checkpoint unit tests: torn tails, corruption, compaction.

The journal's contract (``repro.service.wal``): a crash mid-append
loses at most the torn frame; corruption anywhere else refuses to
recover; compaction + replay is idempotent across its own crash
window.  Each failure mode here is constructed byte-by-byte.
"""

import gzip
import json
import struct
import zlib

import pytest

from repro.core.audit import Auditor, stream_blocks
from repro.service.server import AuditService, audit_answer
from repro.service.wal import (
    MAGIC,
    VERSION,
    BlockJournal,
    WalCorruptionError,
    decode_entry_block,
    encode_entry,
)
from tests.oracle import nan_equal


def _entries(dataset, count=None):
    feed = list(stream_blocks(dataset))[:count]
    return [encode_entry(h, p, b) for h, p, b in feed]


def _frame(payload: bytes) -> bytes:
    return (
        struct.pack("<I", len(payload))
        + payload
        + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
    )


@pytest.fixture(scope="module")
def wal_entries(small_dataset_a):
    return _entries(small_dataset_a, count=12)


class TestAppendRecoverRoundtrip:
    def test_roundtrip(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        for entry in wal_entries:
            journal.append(entry)
        journal.close()
        assert BlockJournal(tmp_path).recover() == wal_entries

    def test_recover_empty_directory(self, tmp_path):
        assert BlockJournal(tmp_path).recover() == []

    def test_entries_decode_back_to_blocks(self, small_dataset_a):
        prev = None
        for height, pool, block in stream_blocks(small_dataset_a):
            entry = encode_entry(height, pool, block)
            prev_hash = prev.block_hash if prev else block.header.prev_hash
            decoded = decode_entry_block(
                json.loads(json.dumps(entry)), prev_hash
            )
            assert decoded == block
            prev = block


class TestTornTail:
    def test_partial_frame_truncated_not_fatal(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        for entry in wal_entries:
            journal.append(entry)
        journal.close()
        # Simulate a crash mid-append: half a frame lands on disk.
        payload = json.dumps({"h": 99}).encode()
        torn = _frame(payload)[: len(payload) // 2]
        with open(journal.wal_path, "ab") as handle:
            handle.write(torn)

        recovered = BlockJournal(tmp_path)
        assert recovered.recover() == wal_entries
        assert recovered.torn_frames_dropped == 1
        # The torn bytes are gone: a second recovery is clean.
        again = BlockJournal(tmp_path)
        assert again.recover() == wal_entries
        assert again.torn_frames_dropped == 0

    def test_torn_header_recovers_to_empty(self, tmp_path):
        journal = BlockJournal(tmp_path)
        journal._write_header()
        journal.wal_path.write_bytes(MAGIC[:2])  # crash mid-header
        assert BlockJournal(tmp_path).recover() == []

    def test_append_resumes_after_torn_tail(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        for entry in wal_entries[:6]:
            journal.append(entry)
        journal.close()
        with open(journal.wal_path, "ab") as handle:
            handle.write(b"\xff\x13")  # garbage tail

        resumed = BlockJournal(tmp_path)
        assert resumed.recover() == wal_entries[:6]
        for entry in wal_entries[6:]:
            resumed.append(entry)
        resumed.close()
        assert BlockJournal(tmp_path).recover() == wal_entries


class TestCorruption:
    def test_bad_magic_raises(self, tmp_path):
        journal = BlockJournal(tmp_path)
        journal.append({"h": 0, "p": "x", "b": {}})
        journal.close()
        data = journal.wal_path.read_bytes()
        journal.wal_path.write_bytes(b"XXXX" + data[4:])
        with pytest.raises(WalCorruptionError):
            BlockJournal(tmp_path).recover()

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "blocks.wal"
        path.write_bytes(MAGIC + struct.pack("<I", VERSION + 1))
        with pytest.raises(WalCorruptionError):
            BlockJournal(tmp_path).recover()

    def test_mid_file_bit_rot_raises(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        for entry in wal_entries:
            journal.append(entry)
        journal.close()
        data = bytearray(journal.wal_path.read_bytes())
        middle = len(data) // 2
        data[middle] ^= 0xFF
        journal.wal_path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            BlockJournal(tmp_path).recover()

    def test_journal_gap_raises(self, tmp_path):
        journal = BlockJournal(tmp_path)
        journal.append({"h": 0, "p": "x", "b": {}})
        journal.append({"h": 2, "p": "x", "b": {}})  # height 1 missing
        journal.close()
        with pytest.raises(WalCorruptionError, match="gap"):
            BlockJournal(tmp_path).recover()


class TestCompaction:
    def test_compact_then_recover_identical(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        for entry in wal_entries:
            journal.append(entry)
        journal.compact(wal_entries)
        journal.close()
        assert journal.checkpoint_path.exists()
        # Journal is truncated back to a bare header.
        assert journal.wal_path.read_bytes() == MAGIC + struct.pack(
            "<I", VERSION
        )
        assert BlockJournal(tmp_path).recover() == wal_entries

    def test_crash_between_checkpoint_and_truncate(
        self, tmp_path, wal_entries
    ):
        """The compaction crash window re-delivers; replay must dedupe."""
        journal = BlockJournal(tmp_path)
        for entry in wal_entries:
            journal.append(entry)
        journal.close()
        saved_wal = journal.wal_path.read_bytes()
        journal2 = BlockJournal(tmp_path)
        journal2.compact(wal_entries)
        journal2.close()
        # Crash simulation: the checkpoint landed but the truncate did
        # not — restore the pre-compaction journal bytes.
        journal2.wal_path.write_bytes(saved_wal)
        assert BlockJournal(tmp_path).recover() == wal_entries

    def test_appends_after_compaction(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        for entry in wal_entries[:8]:
            journal.append(entry)
        journal.compact(wal_entries[:8])
        for entry in wal_entries[8:]:
            journal.append(entry)
        journal.close()
        assert BlockJournal(tmp_path).recover() == wal_entries

    def test_truncated_checkpoint_rejected_not_half_loaded(
        self, tmp_path, wal_entries
    ):
        """A torn checkpoint must fail recovery loudly (ISSUE 6 sat. 3)."""
        journal = BlockJournal(tmp_path)
        for entry in wal_entries:
            journal.append(entry)
        journal.compact(wal_entries)
        journal.close()
        data = journal.checkpoint_path.read_bytes()
        journal.checkpoint_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(WalCorruptionError):
            BlockJournal(tmp_path).recover()

    def test_wrong_checkpoint_version_rejected(self, tmp_path, wal_entries):
        journal = BlockJournal(tmp_path)
        journal.compact(wal_entries)
        with gzip.open(journal.checkpoint_path, "wt", encoding="utf-8") as f:
            json.dump({"version": VERSION + 9, "entries": []}, f)
        with pytest.raises(WalCorruptionError, match="version"):
            BlockJournal(tmp_path).recover()


class TestServiceRecovery:
    def test_mid_stream_crash_resumes_bit_identical(
        self, tmp_path, small_dataset_a
    ):
        """kill -9 between blocks: recovered state equals batch prefix.

        The service folds 12 blocks (with a compaction in the middle),
        is dropped without any shutdown, and a fresh process recovers
        from the same WAL directory.  The recovered auditor must answer
        exactly like the one that never crashed.
        """
        feed = list(stream_blocks(small_dataset_a))
        service = AuditService(
            small_dataset_a, wal_dir=tmp_path, checkpoint_every=5, fsync=False
        )
        with service._state_lock:
            for height, pool, block in feed[:12]:
                service._journal_and_fold(encode_entry(height, pool, block))
        before = audit_answer(service.auditor)
        del service  # no stop(), no close(): the crash

        recovered = AuditService(
            small_dataset_a, wal_dir=tmp_path, checkpoint_every=5, fsync=False
        )
        recovered.recover()
        try:
            assert recovered.applied_height == feed[11][0]
            assert nan_equal(audit_answer(recovered.auditor), before)
        finally:
            recovered.stop()

    def test_recovery_with_torn_wal_tail(self, tmp_path, small_dataset_a):
        feed = list(stream_blocks(small_dataset_a))
        service = AuditService(
            small_dataset_a, wal_dir=tmp_path, checkpoint_every=100, fsync=False
        )
        with service._state_lock:
            for height, pool, block in feed[:8]:
                service._journal_and_fold(encode_entry(height, pool, block))
        service.journal.close()
        with open(service.journal.wal_path, "ab") as handle:
            handle.write(b"\x99\x01\x02")  # crash mid-append

        recovered = AuditService(
            small_dataset_a, wal_dir=tmp_path, checkpoint_every=100, fsync=False
        )
        recovered.recover()
        try:
            # Only the torn (never-acked) frame is lost.
            assert recovered.applied_height == feed[7][0]
        finally:
            recovered.stop()
