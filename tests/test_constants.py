"""Unit tests for protocol constants and unit conversions."""

import pytest

from repro.chain.constants import (
    COIN,
    HALVING_INTERVAL,
    INITIAL_SUBSIDY,
    MAX_BLOCK_VSIZE,
    block_subsidy,
    btc_per_kb_to_sat_per_vb,
    sat_per_vb_to_btc_per_kb,
)


class TestBlockSubsidy:
    def test_genesis_subsidy_is_50_btc(self):
        assert block_subsidy(0) == 50 * COIN

    def test_subsidy_constant_within_first_era(self):
        assert block_subsidy(HALVING_INTERVAL - 1) == INITIAL_SUBSIDY

    def test_first_halving(self):
        assert block_subsidy(HALVING_INTERVAL) == INITIAL_SUBSIDY // 2

    def test_second_halving(self):
        assert block_subsidy(2 * HALVING_INTERVAL) == INITIAL_SUBSIDY // 4

    def test_2020_era_subsidy_is_6_25_btc(self):
        # Height 630_000 (May 2020) began the 6.25 BTC era.
        assert block_subsidy(630_001) == 625_000_000

    def test_subsidy_reaches_zero_after_64_halvings(self):
        assert block_subsidy(64 * HALVING_INTERVAL) == 0

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            block_subsidy(-1)

    def test_total_supply_bounded_by_21m(self):
        total = sum(
            block_subsidy(era * HALVING_INTERVAL) * HALVING_INTERVAL
            for era in range(64)
        )
        assert total <= 21_000_000 * COIN


class TestUnitConversions:
    def test_recommended_minimum_is_one_sat_per_vb(self):
        # 1e-5 BTC/KB (the paper's recommended minimum) == 1 sat/vB.
        assert btc_per_kb_to_sat_per_vb(1e-5) == pytest.approx(1.0)

    def test_round_trip(self):
        for rate in (0.1, 1.0, 25.0, 1000.0):
            assert sat_per_vb_to_btc_per_kb(
                btc_per_kb_to_sat_per_vb(rate)
            ) == pytest.approx(rate)

    def test_paper_band_edges(self):
        # The paper's 1e-4 and 1e-3 BTC/KB band edges in sat/vB.
        assert btc_per_kb_to_sat_per_vb(1e-4) == pytest.approx(10.0)
        assert btc_per_kb_to_sat_per_vb(1e-3) == pytest.approx(100.0)

    def test_block_limit_is_one_megabyte(self):
        assert MAX_BLOCK_VSIZE == 1_000_000
