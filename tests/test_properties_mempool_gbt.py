"""Property-based tests: mempool invariants and template construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mempool.mempool import Mempool, MempoolEntry
from repro.mining.gbt import (
    ancestor_package_template,
    greedy_feerate_template,
    is_topologically_valid,
    repair_topological_order,
)

from conftest import TxFactory


# ----------------------------------------------------------------------
# Mempool under random operation sequences
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["offer", "remove", "expire"]),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=60,
)


@given(operations=ops, min_fee_rate=st.floats(min_value=0.0, max_value=5.0))
def test_mempool_accounting_invariants(operations, min_fee_rate):
    txf = TxFactory("prop-mempool")
    pool = Mempool(min_fee_rate=min_fee_rate, expiry_seconds=100.0)
    known = []
    now = 0.0
    for op, arg in operations:
        now += 1.0
        if op == "offer":
            tx = txf.tx(fee=arg * 100, vsize=100 + arg)
            known.append(tx)
            pool.offer(tx, now)
        elif op == "remove" and known:
            pool.remove(known[arg % len(known)].txid)
        elif op == "expire":
            pool.expire(now)
        # Invariants hold after every operation.
        entries = pool.entries()
        assert pool.total_vsize == sum(e.vsize for e in entries)
        assert pool.total_fees == sum(e.tx.fee for e in entries)
        assert len(pool) == len(entries)
        assert all(e.fee_rate >= min_fee_rate for e in entries)


@given(fees=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=40))
def test_entries_by_fee_rate_is_sorted_permutation(fees):
    txf = TxFactory("prop-order")
    pool = Mempool(min_fee_rate=0.0)
    for index, fee in enumerate(fees):
        pool.offer(txf.tx(fee=fee, vsize=100), now=float(index))
    ordered = pool.entries_by_fee_rate()
    rates = [e.fee_rate for e in ordered]
    assert rates == sorted(rates, reverse=True)
    assert len(ordered) == len(fees)


# ----------------------------------------------------------------------
# Template construction
# ----------------------------------------------------------------------
def random_entries(seed, count, chain_probability=0.3):
    txf = TxFactory(f"prop-gbt-{seed}")
    rng = np.random.default_rng(seed)
    entries = []
    for index in range(count):
        parents = ()
        if entries and rng.random() < chain_probability:
            parent = entries[int(rng.integers(len(entries)))]
            parents = (parent.tx.txid,)
        tx = txf.tx(
            fee=int(rng.integers(1, 100_000)),
            vsize=int(rng.integers(100, 2000)),
            parents=parents,
        )
        entries.append(MempoolEntry(tx=tx, arrival_time=float(index)))
    return entries


@settings(max_examples=40)
@given(seed=st.integers(min_value=0, max_value=10_000), count=st.integers(min_value=1, max_value=40))
def test_package_template_invariants(seed, count):
    entries = random_entries(seed, count)
    budget = 20_000
    template = ancestor_package_template(entries, max_vsize=budget)
    assert template.total_vsize <= budget
    assert is_topologically_valid(template.transactions)
    txids = template.txids()
    assert len(txids) == len(set(txids))
    assert template.total_fee == sum(t.fee for t in template.transactions)
    assert template.total_vsize == sum(t.vsize for t in template.transactions)


@settings(max_examples=40)
@given(seed=st.integers(min_value=0, max_value=10_000), count=st.integers(min_value=1, max_value=40))
def test_greedy_template_invariants(seed, count):
    entries = random_entries(seed, count, chain_probability=0.0)
    budget = 15_000
    template = greedy_feerate_template(entries, max_vsize=budget)
    assert template.total_vsize <= budget
    rates = [t.fee_rate for t in template.transactions]
    assert rates == sorted(rates, reverse=True)


@settings(max_examples=40)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_package_never_collects_less_fee_than_greedy_when_independent(seed):
    # Without dependencies the two selectors agree on the committed set.
    entries = random_entries(seed, 25, chain_probability=0.0)
    budget = 10_000
    greedy = greedy_feerate_template(entries, max_vsize=budget)
    package = ancestor_package_template(entries, max_vsize=budget)
    assert set(package.txids()) == set(greedy.txids())


@settings(max_examples=40)
@given(seed=st.integers(min_value=0, max_value=10_000), count=st.integers(min_value=1, max_value=30))
def test_repair_is_idempotent_and_complete(seed, count):
    entries = random_entries(seed, count)
    txs = [e.tx for e in entries]
    rng = np.random.default_rng(seed)
    shuffled = [txs[i] for i in rng.permutation(len(txs))]
    repaired = repair_topological_order(shuffled)
    assert sorted(t.txid for t in repaired) == sorted(t.txid for t in shuffled)
    assert is_topologically_valid(repaired)
    assert repair_topological_order(repaired) == repaired
