"""Tests for the Auditor façade's remaining surface."""

import numpy as np
import pytest

from repro.core.audit import Auditor
from repro.core.norms import CpfpFilter


@pytest.fixture(scope="module")
def auditor(small_dataset_c):
    return Auditor(small_dataset_c)


@pytest.fixture(scope="module")
def auditor_a(small_dataset_a):
    return Auditor(small_dataset_a)


class TestPpeSurface:
    def test_ppe_distribution_covers_nonempty_blocks(self, auditor):
        results = auditor.ppe_distribution()
        nonempty = sum(
            1
            for block in auditor.dataset.chain
            if len(
                [
                    t
                    for t in block.transactions
                ]
            )
            > 0
        )
        assert 0 < len(results) <= nonempty

    def test_ppe_filter_variants_ordered(self, auditor):
        none_mean = np.mean(
            [r.ppe for r in auditor.ppe_distribution(CpfpFilter.NONE)]
        )
        children_mean = np.mean(
            [r.ppe for r in auditor.ppe_distribution(CpfpFilter.CHILDREN)]
        )
        involved_mean = np.mean(
            [r.ppe for r in auditor.ppe_distribution(CpfpFilter.INVOLVED)]
        )
        assert involved_mean <= children_mean <= none_mean + 0.5

    def test_ppe_by_pool_partition(self, auditor):
        pools = [e.pool for e in auditor.dataset.hash_rates()[:3]]
        per_pool = auditor.ppe_by_pool(pools)
        assert set(per_pool) == set(pools)
        total = sum(len(v) for v in per_pool.values())
        assert total <= len(auditor.ppe_distribution())


class TestSnapshotSurface:
    def test_snapshot_views_join_commits(self, auditor_a):
        views = auditor_a.snapshot_views(count=5)
        assert len(views) == 5
        commits = auditor_a.dataset.commit_heights()
        for view in views:
            assert all(txid in commits for txid in view.txids)

    def test_exclude_cpfp_shrinks_views(self, auditor_a):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        plain = auditor_a.snapshot_views(count=5, rng=rng1)
        filtered = auditor_a.snapshot_views(count=5, rng=rng2, exclude_cpfp=True)
        assert sum(v.tx_count for v in filtered) <= sum(v.tx_count for v in plain)

    def test_violation_stats_reproducible_with_rng(self, auditor_a):
        a = auditor_a.violation_stats(count=5, rng=np.random.default_rng(9))
        b = auditor_a.violation_stats(count=5, rng=np.random.default_rng(9))
        assert [s.violating_pairs for s in a] == [s.violating_pairs for s in b]


class TestDelaysSurface:
    def test_censored_superset_of_committed(self, auditor_a):
        _, committed_only = auditor_a.commit_delays(include_censored=False)
        _, censored = auditor_a.commit_delays(include_censored=True)
        assert censored.size >= committed_only.size

    def test_congested_fraction_in_unit_interval(self, auditor_a):
        fraction = auditor_a.congested_fraction()
        assert 0.0 <= fraction <= 1.0

    def test_fee_rates_by_congestion_covers_observed(self, auditor_a):
        grouped = auditor_a.fee_rates_by_congestion_level()
        total = sum(len(v) for v in grouped.values())
        observed = sum(
            1 for r in auditor_a.dataset.tx_records.values() if r.observed
        )
        assert total == observed


class TestTableSurfaces:
    def test_self_interest_table_owner_filter(self, auditor):
        rows = auditor.self_interest_table(owner_pools=["F2Pool"])
        assert rows
        assert all(row.owner_pool == "F2Pool" for row in rows)

    def test_self_interest_ground_truth_mode(self, auditor):
        inferred = auditor.self_interest_table(
            owner_pools=["F2Pool"], use_inferred=True
        )
        truth = auditor.self_interest_table(
            owner_pools=["F2Pool"], use_inferred=False
        )
        assert inferred and truth
        # The inferred set can only be a superset of committed truth.
        assert inferred[0].tx_count >= 0.9 * truth[0].tx_count

    def test_scam_table_explicit_pools(self, auditor):
        rows = auditor.scam_table(target_pools=["F2Pool", "Poolin"])
        assert [row.pool for row in rows] == ["F2Pool", "Poolin"]

    def test_dark_fee_sweep_custom_thresholds(self, auditor):
        report = auditor.dark_fee_sweep(
            "BTC.com",
            service_name="BTC.com-accelerator",
            thresholds=(95.0, 5.0),
            rng=np.random.default_rng(2),
        )
        assert [row.threshold for row in report.rows] == [95.0, 5.0]
