"""Benchmark regenerating Fig 4: commit delays, fee-rates, and the congestion coupling.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig4(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a, ctx.dataset_b]
    result = run_and_check(benchmark, ctx, results_dir, "fig4", prebuild)
    assert result.measured  # the experiment produced data
