"""Benchmark regenerating Fig 5: higher fee bands commit faster (dataset A).

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig5(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a]
    result = run_and_check(benchmark, ctx, results_dir, "fig5", prebuild)
    assert result.measured  # the experiment produced data
