"""Benchmark regenerating the epsilon-tightening ablation of the violation test.

Runs the experiment pipeline on prebuilt scenario datasets, records the
report under ``benchmarks/results/``, and asserts the expected shapes.
"""

from conftest import run_and_check


def test_abl_epsilon(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a]
    result = run_and_check(benchmark, ctx, results_dir, "abl_epsilon", prebuild)
    assert result.measured
