"""Benchmark regenerating Fig 14: acceleration-service pricing vs public fees.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig14(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a]
    result = run_and_check(benchmark, ctx, results_dir, "fig14", prebuild)
    assert result.measured  # the experiment produced data
