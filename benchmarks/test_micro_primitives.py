"""Micro-benchmarks for the audit toolkit's hot primitives.

Unlike the experiment benchmarks (one timed regeneration per artefact),
these run many rounds over fixed inputs, tracking the performance of
the primitives that dominate large audits: position prediction, the
pairwise violation count, exact binomial tails, block-template
construction, and SPPE extraction.
"""

import numpy as np
import pytest

from repro.chain.block import build_block
from repro.chain.transaction import TransactionBuilder, coinbase_value, make_coinbase
from repro.core.ppe import block_ppe, per_transaction_sppe
from repro.core.stattests import binom_tail_upper
from repro.core.violations import count_violations
from repro.mempool.mempool import MempoolEntry
from repro.mining.gbt import ancestor_package_template, greedy_feerate_template


@pytest.fixture(scope="module")
def big_block():
    builder = TransactionBuilder("bench-block")
    rng = np.random.default_rng(0)
    txs = [
        builder.build(
            "x",
            1000,
            fee=int(rng.integers(100, 1_000_000)),
            vsize=int(rng.integers(150, 600)),
            nonce=i,
        )
        for i in range(1500)
    ]
    coinbase = make_coinbase("pool", coinbase_value(0, sum(t.fee for t in txs)), "/bench/", 0)
    return build_block(0, "0" * 64, 0.0, coinbase, txs)


@pytest.fixture(scope="module")
def entries():
    builder = TransactionBuilder("bench-entries")
    rng = np.random.default_rng(1)
    out = []
    for i in range(3000):
        parents = ()
        if out and rng.random() < 0.25:
            parents = (out[int(rng.integers(len(out)))].tx.txid,)
        tx = builder.build(
            "x",
            1000,
            fee=int(rng.integers(100, 500_000)),
            vsize=int(rng.integers(150, 2000)),
            extra_parents=list(parents),
            nonce=i,
        )
        out.append(MempoolEntry(tx=tx, arrival_time=float(i)))
    return out


def test_block_ppe_1500_txs(benchmark, big_block):
    result = benchmark(block_ppe, big_block)
    assert result is not None and 0.0 <= result.ppe <= 100.0


def test_per_transaction_sppe(benchmark, big_block):
    errors = benchmark(per_transaction_sppe, [big_block])
    assert len(errors) > 1000


def test_violation_count_2000_txs(benchmark):
    rng = np.random.default_rng(2)
    n = 2000
    times = rng.uniform(0, 10_000, n)
    rates = rng.uniform(1, 500, n)
    heights = rng.integers(0, 200, n)
    eligible, violating = benchmark(
        count_violations, times, rates, heights, 10.0
    )
    assert 0 <= violating <= eligible


def test_exact_binomial_tail_paper_scale(benchmark):
    p = benchmark(binom_tail_upper, 214, 1343, 0.0375)
    assert p < 1e-60


def test_greedy_template_3000_entries(benchmark, entries):
    template = benchmark(greedy_feerate_template, entries, 1_000_000)
    assert len(template) > 100


def test_package_template_3000_entries(benchmark, entries):
    template = benchmark(ancestor_package_template, entries, 1_000_000)
    assert len(template) > 100
