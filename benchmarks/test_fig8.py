"""Benchmark regenerating Fig 8: pool reward wallets and inferred self-interest txs.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig8(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "fig8", prebuild)
    assert result.measured  # the experiment produced data
