"""Shared benchmark fixtures.

Datasets are built once per session at ``REPRO_BENCH_SCALE`` (default
0.2) so each benchmark times the *analysis*, not the simulation.  Every
benchmark writes its rendered paper-vs-measured report into
``results/`` next to this file, giving a reviewable artefact per run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.base import DataContext
from repro.analysis.experiments import run_experiment

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> DataContext:
    return DataContext(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_check(benchmark, ctx, results_dir, experiment_id, prebuild):
    """Shared benchmark body: prebuild data, time the analysis, verify.

    ``prebuild`` is a list of dataset-builder callables (e.g.
    ``[ctx.dataset_c]``) invoked before timing starts, so the timed
    section is the paper's analysis pipeline alone.
    """
    for builder in prebuild:
        builder()
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, ctx), rounds=1, iterations=1
    )
    report_path = results_dir / f"{experiment_id}.txt"
    report_path.write_text(result.report() + "\n", encoding="utf-8")
    failed = result.failed_checks()
    assert not failed, (
        f"{experiment_id}: {len(failed)} shape check(s) failed: "
        + "; ".join(f"{c.description} ({c.detail})" for c in failed)
    )
    return result
