"""Benchmark regenerating third-party norm verification (extension).

Runs the experiment pipeline on prebuilt scenario datasets, records the
report under ``benchmarks/results/``, and asserts the expected shapes.
"""

from conftest import run_and_check


def test_ext_verification(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "ext_verification", prebuild)
    assert result.measured
