"""Benchmark regenerating the §6.1 candidate-norms comparison (extension).

Runs the experiment pipeline on prebuilt scenario datasets, records the
report under ``benchmarks/results/``, and asserts the expected shapes.
"""

from conftest import run_and_check


def test_ext_norms(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a]
    result = run_and_check(benchmark, ctx, results_dir, "ext_norms", prebuild)
    assert result.measured
