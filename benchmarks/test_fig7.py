"""Benchmark regenerating Fig 7: position prediction error, overall and per pool.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig7(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "fig7", prebuild)
    assert result.measured  # the experiment produced data
