"""Benchmark regenerating Fig 13: mining-pool activity during the scam window.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig13(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "fig13", prebuild)
    assert result.measured  # the experiment produced data
