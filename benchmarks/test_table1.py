"""Benchmark regenerating Table 1: dataset summaries (blocks, txs, CPFP share, empty blocks).

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_table1(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a, ctx.dataset_b, ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "table1", prebuild)
    assert result.measured  # the experiment produced data
