"""Benchmark regenerating censorship detection via the deceleration test (extension).

Runs the experiment pipeline on prebuilt scenario datasets, records the
report under ``benchmarks/results/``, and asserts the expected shapes.
"""

from conftest import run_and_check


def test_ext_censorship(benchmark, ctx, results_dir):
    prebuild = []
    result = run_and_check(benchmark, ctx, results_dir, "ext_censorship", prebuild)
    assert result.measured
