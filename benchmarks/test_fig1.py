"""Benchmark regenerating Fig 1: the April 2016 ordering-norm switch.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig1(benchmark, ctx, results_dir):
    prebuild = []
    result = run_and_check(benchmark, ctx, results_dir, "fig1", prebuild)
    assert result.measured  # the experiment produced data
