"""Benchmark regenerating Fig 2: blocks and transactions per mining pool.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_fig2(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_a, ctx.dataset_b, ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "fig2", prebuild)
    assert result.measured  # the experiment produced data
