"""Benchmark regenerating Table 3: scam payments show no differential treatment.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_table3(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "table3", prebuild)
    assert result.measured  # the experiment produced data
