"""Benchmark regenerating the statistical-power map of the audit test.

Pure Monte-Carlo over the exact binomial test — no datasets needed.
"""

from conftest import run_and_check


def test_ext_power(benchmark, ctx, results_dir):
    result = run_and_check(benchmark, ctx, results_dir, "ext_power", [])
    assert result.measured
