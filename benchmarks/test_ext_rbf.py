"""Benchmark regenerating the RBF-vs-dark-fee acceleration comparison.

Runs the experiment pipeline on prebuilt scenario datasets, records the
report under ``benchmarks/results/``, and asserts the expected shapes.
"""

from conftest import run_and_check


def test_ext_rbf(benchmark, ctx, results_dir):
    prebuild = [ctx.dataset_c]
    result = run_and_check(benchmark, ctx, results_dir, "ext_rbf", prebuild)
    assert result.measured
