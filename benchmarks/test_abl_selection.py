"""Benchmark regenerating the greedy-vs-package GBT ablation.

Runs the experiment pipeline on prebuilt scenario datasets, records the
report under ``benchmarks/results/``, and asserts the expected shapes.
"""

from conftest import run_and_check


def test_abl_selection(benchmark, ctx, results_dir):
    prebuild = []
    result = run_and_check(benchmark, ctx, results_dir, "abl_selection", prebuild)
    assert result.measured
