"""Benchmark regenerating Table 5: fee share of miner revenue, 2016-2020.

Runs the experiment pipeline on prebuilt scenario datasets, records the
paper-vs-measured report under ``benchmarks/results/``, and asserts the
paper's qualitative shape checks.
"""

from conftest import run_and_check


def test_table5(benchmark, ctx, results_dir):
    prebuild = []
    result = run_and_check(benchmark, ctx, results_dir, "table5", prebuild)
    assert result.measured  # the experiment produced data
